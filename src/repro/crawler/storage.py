"""Crawl persistence: SQLite database plus JSONL export/import.

The paper's wrapper stores all collected data in a database immediately
after each site completes (Appendix A.2, C14).  :class:`CrawlStore`
reproduces that: one SQLite file with ``visits``, ``frames``, ``calls``,
``scripts`` and ``prompts`` tables, savable incrementally — including from
:class:`~repro.crawler.pool.CrawlerPool` worker threads, behind a
serialized writer lock with WAL enabled for concurrent readers — and
loadable back into :class:`~repro.crawler.pool.CrawlDataset` form so
analyses can run without re-crawling.  Loading tolerates partially
written databases (a crawl killed mid-save): orphan child rows are
skipped with a counted warning so checkpoint/resume survives them.
"""

from __future__ import annotations

import json
import logging
import sqlite3
import threading
from collections import Counter
from pathlib import Path
from typing import Iterable, Iterator

from repro.crawler.pool import CrawlDataset
from repro.obs import metrics as _metrics
from repro.crawler.records import (
    CallRecord,
    FrameRecord,
    PromptRecord,
    ScriptSourceRecord,
    SiteVisit,
)

logger = logging.getLogger(__name__)

#: Version of the on-disk layout below.  Bump on any change to tables,
#: columns or row encoding; the measurement cache
#: (:mod:`repro.experiments.runner`) keys its manifests on this value so
#: stale checkpoints are re-crawled instead of misread.
SCHEMA_VERSION = 2

#: Maximum parameters per ``IN (...)`` clause; SQLite's default variable
#: limit is 999, so stay comfortably below it.
_SQL_IN_CHUNK = 500

_SCHEMA = """
CREATE TABLE IF NOT EXISTS visits (
    rank INTEGER PRIMARY KEY,
    requested_url TEXT NOT NULL,
    final_url TEXT NOT NULL,
    success INTEGER NOT NULL,
    failure TEXT,
    top_level_document_count INTEGER NOT NULL,
    skipped_lazy_iframes INTEGER NOT NULL,
    iframe_load_failures INTEGER NOT NULL,
    duration_seconds REAL NOT NULL,
    retries INTEGER NOT NULL DEFAULT 0,
    error_detail TEXT
);
CREATE TABLE IF NOT EXISTS frames (
    rank INTEGER NOT NULL,
    frame_id INTEGER NOT NULL,
    url TEXT NOT NULL,
    origin TEXT NOT NULL,
    site TEXT NOT NULL,
    parent_id INTEGER,
    depth INTEGER NOT NULL,
    is_local INTEGER NOT NULL,
    headers TEXT NOT NULL,
    iframe_attributes TEXT,
    PRIMARY KEY (rank, frame_id)
);
CREATE TABLE IF NOT EXISTS calls (
    rank INTEGER NOT NULL,
    frame_id INTEGER NOT NULL,
    api TEXT NOT NULL,
    kind TEXT NOT NULL,
    permissions TEXT NOT NULL,
    args TEXT NOT NULL,
    script_url TEXT,
    allowed INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS scripts (
    rank INTEGER NOT NULL,
    frame_id INTEGER NOT NULL,
    url TEXT,
    source TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS prompts (
    rank INTEGER NOT NULL,
    frame_id INTEGER NOT NULL,
    permission TEXT NOT NULL,
    display_site TEXT NOT NULL,
    text TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_calls_rank ON calls(rank);
CREATE INDEX IF NOT EXISTS idx_frames_rank ON frames(rank);
CREATE INDEX IF NOT EXISTS idx_scripts_rank ON scripts(rank);
CREATE INDEX IF NOT EXISTS idx_prompts_rank ON prompts(rank);
"""

_VISIT_COLUMNS = ("rank, requested_url, final_url, success, failure, "
                  "top_level_document_count, skipped_lazy_iframes, "
                  "iframe_load_failures, duration_seconds, retries, "
                  "error_detail")


def _visit_from_row(row: tuple) -> SiteVisit:
    return SiteVisit(
        rank=row[0], requested_url=row[1], final_url=row[2],
        success=bool(row[3]), failure=row[4],
        top_level_document_count=row[5],
        skipped_lazy_iframes=row[6],
        iframe_load_failures=row[7], duration_seconds=row[8],
        retries=row[9], error_detail=row[10])


def _frame_from_row(row: tuple) -> FrameRecord:
    return FrameRecord(
        frame_id=row[1], url=row[2], origin=row[3], site=row[4],
        parent_id=row[5], depth=row[6], is_local=bool(row[7]),
        headers=json.loads(row[8]),
        iframe_attributes=(json.loads(row[9])
                           if row[9] is not None else None))


def _call_from_row(row: tuple) -> CallRecord:
    return CallRecord(
        frame_id=row[1], api=row[2], kind=row[3],
        permissions=tuple(json.loads(row[4])),
        args=tuple(json.loads(row[5])),
        script_url=row[6], allowed=bool(row[7]))


def _script_from_row(row: tuple) -> ScriptSourceRecord:
    return ScriptSourceRecord(frame_id=row[1], url=row[2], source=row[3])


def _prompt_from_row(row: tuple) -> PromptRecord:
    return PromptRecord(
        permission=row[2], requesting_frame_id=row[1],
        display_site=row[3], text=row[4])

#: Columns added after the original schema shipped; existing checkpoint
#: databases are migrated in place on open.
_VISITS_MIGRATIONS = (
    ("retries", "INTEGER NOT NULL DEFAULT 0"),
    ("error_detail", "TEXT"),
)


class CrawlStore:
    """SQLite-backed persistence for crawl datasets.

    One store owns one connection, opened with
    ``check_same_thread=False`` and guarded by a serialized writer lock,
    so pool worker threads can call :meth:`save_visit` directly as each
    site completes.  The journal runs in WAL mode so readers (another
    process tailing the checkpoint) never block the writers.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.executescript(_SCHEMA)
        self._migrate()
        #: Orphan child rows skipped by the most recent
        #: :meth:`load_dataset` call, per table.
        self.last_orphan_counts: dict[str, int] = {}

    def _migrate(self) -> None:
        columns = {row[1] for row in
                   self._conn.execute("PRAGMA table_info(visits)")}
        for name, spec in _VISITS_MIGRATIONS:
            if name not in columns:
                self._conn.execute(
                    f"ALTER TABLE visits ADD COLUMN {name} {spec}")
        self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "CrawlStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writing ---------------------------------------------------------------

    def save_visit(self, visit: SiteVisit) -> None:
        """Persist one visit (incremental, mirroring C14).  Thread-safe."""
        with self._lock:
            conn = self._conn
            conn.execute(
                "INSERT OR REPLACE INTO visits VALUES (?,?,?,?,?,?,?,?,?,?,?)",
                (visit.rank, visit.requested_url, visit.final_url,
                 int(visit.success), visit.failure,
                 visit.top_level_document_count, visit.skipped_lazy_iframes,
                 visit.iframe_load_failures, visit.duration_seconds,
                 visit.retries, visit.error_detail))
            conn.execute("DELETE FROM frames WHERE rank = ?", (visit.rank,))
            conn.execute("DELETE FROM calls WHERE rank = ?", (visit.rank,))
            conn.execute("DELETE FROM scripts WHERE rank = ?", (visit.rank,))
            conn.execute("DELETE FROM prompts WHERE rank = ?", (visit.rank,))
            conn.executemany(
                "INSERT INTO frames VALUES (?,?,?,?,?,?,?,?,?,?)",
                [(visit.rank, f.frame_id, f.url, f.origin, f.site, f.parent_id,
                  f.depth, int(f.is_local), json.dumps(f.headers),
                  json.dumps(f.iframe_attributes)
                  if f.iframe_attributes is not None else None)
                 for f in visit.frames])
            conn.executemany(
                "INSERT INTO calls VALUES (?,?,?,?,?,?,?,?)",
                [(visit.rank, c.frame_id, c.api, c.kind,
                  json.dumps(list(c.permissions)), json.dumps(list(c.args)),
                  c.script_url, int(c.allowed))
                 for c in visit.calls])
            conn.executemany(
                "INSERT INTO scripts VALUES (?,?,?,?)",
                [(visit.rank, s.frame_id, s.url, s.source)
                 for s in visit.scripts])
            conn.executemany(
                "INSERT INTO prompts VALUES (?,?,?,?,?)",
                [(visit.rank, p.requesting_frame_id, p.permission,
                  p.display_site, p.text)
                 for p in visit.prompts])
            conn.commit()
        if _metrics.COUNTING:
            _metrics.REGISTRY.counter("store.visits_saved").inc()

    def save_dataset(self, dataset: CrawlDataset) -> None:
        for visit in dataset.visits:
            self.save_visit(visit)

    # -- reading ----------------------------------------------------------------

    def stored_ranks(self) -> set[int]:
        """Ranks already persisted — the checkpoint/resume frontier."""
        with self._lock:
            return {row[0] for row in
                    self._conn.execute("SELECT rank FROM visits")}

    def load_dataset(self) -> CrawlDataset:
        """Load everything back into dataset form.

        Child rows whose rank has no ``visits`` row (a partially written or
        corrupt checkpoint) are skipped and counted in
        :attr:`last_orphan_counts` with a logged warning, so resuming from
        an interrupted save never crashes.
        """
        dataset = CrawlDataset()
        orphans: Counter = Counter()
        with self._lock:
            conn = self._conn
            for row in conn.execute(
                    f"SELECT {_VISIT_COLUMNS} FROM visits ORDER BY rank"):
                dataset.visits.append(_visit_from_row(row))
            by_rank = {visit.rank: visit for visit in dataset.visits}
            self._attach_children(by_rank, orphans)
        self.last_orphan_counts = dict(orphans)
        if _metrics.COUNTING:
            registry = _metrics.REGISTRY
            registry.counter("store.visits_loaded").inc(len(dataset.visits))
            registry.gauge("store.orphan_rows").set(sum(orphans.values()))
        if orphans:
            detail = ", ".join(f"{table}={count}" for table, count
                               in sorted(orphans.items()))
            logger.warning(
                "skipped orphan rows without a visits entry (%s) in %s "
                "— partially written checkpoint?", detail, self.path)
        return dataset

    def _attach_children(self, by_rank: dict[int, SiteVisit],
                         orphans: Counter,
                         where: str = "", params: tuple = ()) -> None:
        """Attach frame/call/script/prompt rows to their visits.

        ``ORDER BY rowid`` restores per-visit record order: ``save_visit``
        writes each visit's child rows contiguously, so rowid order within
        one rank equals insertion order even when chunks were saved
        out of rank order.
        """
        conn = self._conn
        tables = (
            ("frames", "SELECT rank, frame_id, url, origin, site, parent_id, "
             "depth, is_local, headers, iframe_attributes FROM frames",
             _frame_from_row, lambda visit: visit.frames),
            ("calls", "SELECT rank, frame_id, api, kind, permissions, args, "
             "script_url, allowed FROM calls",
             _call_from_row, lambda visit: visit.calls),
            ("scripts", "SELECT rank, frame_id, url, source FROM scripts",
             _script_from_row, lambda visit: visit.scripts),
            ("prompts", "SELECT rank, frame_id, permission, display_site, "
             "text FROM prompts",
             _prompt_from_row, lambda visit: visit.prompts),
        )
        for table, select, from_row, records_of in tables:
            for row in conn.execute(f"{select}{where} ORDER BY rowid",
                                    params):
                visit = by_rank.get(row[0])
                if visit is None:
                    orphans[table] += 1
                    continue
                records_of(visit).append(from_row(row))

    def load_visits(self, ranks: "Iterable[int]") -> list[SiteVisit]:
        """Load only the given ranks — the targeted resume query.

        Unlike :meth:`load_dataset` this never materialises the whole
        checkpoint; ranks not present in the store are silently skipped.
        Returns visits sorted by rank.
        """
        wanted = sorted(set(ranks))
        by_rank: dict[int, SiteVisit] = {}
        orphans: Counter = Counter()
        with self._lock:
            conn = self._conn
            for start in range(0, len(wanted), _SQL_IN_CHUNK):
                chunk = wanted[start:start + _SQL_IN_CHUNK]
                marks = ",".join("?" * len(chunk))
                where = f" WHERE rank IN ({marks})"
                for row in conn.execute(
                        f"SELECT {_VISIT_COLUMNS} FROM visits{where}",
                        chunk):
                    by_rank[row[0]] = _visit_from_row(row)
                self._attach_children(by_rank, orphans, where, tuple(chunk))
        if _metrics.COUNTING:
            _metrics.REGISTRY.counter("store.visits_loaded").inc(len(by_rank))
        return [by_rank[rank] for rank in wanted if rank in by_rank]

    # -- SQL-side aggregates ------------------------------------------------------
    #
    # For very large stored crawls it is wasteful to load every record back
    # into Python just to compute adoption counts; these run the headline
    # aggregations inside SQLite and must agree with the in-memory analyses
    # (tested in tests/test_crawler.py).

    def count_successful(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM visits WHERE success = 1").fetchone()
        return int(row[0])

    def count_header_sites(self, header: str = "permissions-policy") -> int:
        """Websites whose top-level document sends ``header``."""
        pattern = f'%"{header}"%'
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM frames "
                "WHERE parent_id IS NULL AND headers LIKE ?", (pattern,)
            ).fetchone()
        return int(row[0])

    def count_delegating_sites(self) -> int:
        """Websites with at least one direct iframe carrying an allow
        attribute (a superset of true delegation: 'none' opt-outs are
        resolved by the Python analysis, not in SQL)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(DISTINCT rank) FROM frames "
                'WHERE depth = 1 AND iframe_attributes LIKE \'%"allow"%\''
            ).fetchone()
        return int(row[0])

    def top_embedded_sites(self, limit: int = 10) -> list[tuple[str, int]]:
        """Table 3 in SQL: external embedded sites by distinct websites."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT f.site, COUNT(DISTINCT f.rank) AS websites "
                "FROM frames f "
                "JOIN frames top ON top.rank = f.rank AND top.parent_id IS NULL "
                "WHERE f.depth = 1 AND f.is_local = 0 AND f.site != '' "
                "AND f.site != top.site "
                "GROUP BY f.site ORDER BY websites DESC LIMIT ?", (limit,)
            ).fetchall()
        return [(site, int(count)) for site, count in rows]

    def failure_counts(self) -> dict[str, int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT failure, COUNT(*) FROM visits "
                "WHERE success = 0 GROUP BY failure").fetchall()
        return {failure: int(count) for failure, count in rows}


def export_jsonl(visits: Iterable[SiteVisit], path: "str | Path") -> int:
    """Export visits as JSON lines; returns the number written.

    The export carries the *full* record — frames, calls, scripts with
    sources, prompts, durations, retry and error metadata — so
    :func:`import_jsonl` round-trips exactly what the SQLite store holds.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for visit in visits:
            handle.write(json.dumps(_visit_to_dict(visit)) + "\n")
            count += 1
    return count


def import_jsonl(path: "str | Path") -> list[SiteVisit]:
    """Inverse of :func:`export_jsonl`: rebuild the visit records."""
    visits = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                visits.append(_visit_from_dict(json.loads(line)))
    return visits


def iter_jsonl(path: "str | Path") -> Iterator[SiteVisit]:
    """Streaming variant of :func:`import_jsonl` for very large exports."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield _visit_from_dict(json.loads(line))


def _visit_to_dict(visit: SiteVisit) -> dict:
    return {
        "rank": visit.rank,
        "requested_url": visit.requested_url,
        "final_url": visit.final_url,
        "success": visit.success,
        "failure": visit.failure,
        "top_level_document_count": visit.top_level_document_count,
        "skipped_lazy_iframes": visit.skipped_lazy_iframes,
        "iframe_load_failures": visit.iframe_load_failures,
        "duration_seconds": visit.duration_seconds,
        "retries": visit.retries,
        "error_detail": visit.error_detail,
        "frames": [
            {"frame_id": f.frame_id, "url": f.url, "origin": f.origin,
             "site": f.site, "parent_id": f.parent_id, "depth": f.depth,
             "is_local": f.is_local, "headers": f.headers,
             "iframe_attributes": f.iframe_attributes}
            for f in visit.frames],
        "calls": [
            {"frame_id": c.frame_id, "api": c.api, "kind": c.kind,
             "permissions": list(c.permissions), "args": list(c.args),
             "script_url": c.script_url, "allowed": c.allowed}
            for c in visit.calls],
        "scripts": [
            {"frame_id": s.frame_id, "url": s.url, "source": s.source}
            for s in visit.scripts],
        "prompts": [
            {"permission": p.permission,
             "requesting_frame_id": p.requesting_frame_id,
             "display_site": p.display_site, "text": p.text}
            for p in visit.prompts],
    }


def _visit_from_dict(data: dict) -> SiteVisit:
    visit = SiteVisit(
        rank=data["rank"],
        requested_url=data["requested_url"],
        final_url=data["final_url"],
        success=data["success"],
        failure=data.get("failure"),
        top_level_document_count=data.get("top_level_document_count", 1),
        skipped_lazy_iframes=data.get("skipped_lazy_iframes", 0),
        iframe_load_failures=data.get("iframe_load_failures", 0),
        duration_seconds=data.get("duration_seconds", 0.0),
        retries=data.get("retries", 0),
        error_detail=data.get("error_detail"),
    )
    for f in data.get("frames", ()):
        visit.frames.append(FrameRecord(
            frame_id=f["frame_id"], url=f["url"], origin=f["origin"],
            site=f["site"], parent_id=f["parent_id"], depth=f["depth"],
            is_local=f["is_local"], headers=f["headers"],
            iframe_attributes=f["iframe_attributes"]))
    for c in data.get("calls", ()):
        visit.calls.append(CallRecord(
            frame_id=c["frame_id"], api=c["api"], kind=c["kind"],
            permissions=tuple(c["permissions"]), args=tuple(c["args"]),
            script_url=c["script_url"], allowed=c["allowed"]))
    for s in data.get("scripts", ()):
        visit.scripts.append(ScriptSourceRecord(
            frame_id=s["frame_id"], url=s["url"], source=s["source"]))
    for p in data.get("prompts", ()):
        visit.prompts.append(PromptRecord(
            permission=p["permission"],
            requesting_frame_id=p["requesting_frame_id"],
            display_site=p["display_site"], text=p["text"]))
    return visit
