"""Crawl persistence: SQLite database plus JSONL export/import.

The paper's wrapper stores all collected data in a database immediately
after each site completes (Appendix A.2, C14).  :class:`CrawlStore`
reproduces that: one SQLite file with ``visits``, ``frames``, ``calls``,
``scripts`` and ``prompts`` tables, savable incrementally — including from
:class:`~repro.crawler.pool.CrawlerPool` worker threads, behind a
serialized writer lock with WAL enabled for concurrent readers — and
loadable back into :class:`~repro.crawler.pool.CrawlDataset` form so
analyses can run without re-crawling.

On-disk data is treated as untrusted (DESIGN.md §4g):

* every visit row carries a CRC-32 over its canonical record encoding
  (:mod:`repro.crawler.integrity`), written at save time;
* :meth:`CrawlStore.verify` recomputes all checksums and, with
  ``repair=True``, moves corrupt rows into a ``quarantine`` table;
* loading tolerates partially written or corrupt databases: orphan child
  rows *and* rows that fail to decode are skipped with counted warnings
  so checkpoint/resume (and analysis of a damaged store) never crashes.
"""

from __future__ import annotations

import json
import logging
import os
import sqlite3
import threading
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.crawler.integrity import (
    CHECKSUM_MISMATCH,
    DECODE_ERROR,
    CorruptRow,
    VerifyReport,
    visit_checksum,
)
from repro.crawler.pool import CrawlDataset
from repro.obs import metrics as _metrics
from repro.crawler.records import (
    CallRecord,
    FrameRecord,
    PromptRecord,
    ScriptSourceRecord,
    SiteVisit,
)

logger = logging.getLogger(__name__)

#: Version of the on-disk layout below.  Bump on any change to tables,
#: columns or row encoding; the measurement cache
#: (:mod:`repro.experiments.runner`) keys its manifests on this value so
#: stale checkpoints are re-crawled instead of misread.
SCHEMA_VERSION = 3

#: Maximum parameters per ``IN (...)`` clause; SQLite's default variable
#: limit is 999, so stay comfortably below it.
_SQL_IN_CHUNK = 500

_SCHEMA = """
CREATE TABLE IF NOT EXISTS visits (
    rank INTEGER PRIMARY KEY,
    requested_url TEXT NOT NULL,
    final_url TEXT NOT NULL,
    success INTEGER NOT NULL,
    failure TEXT,
    top_level_document_count INTEGER NOT NULL,
    skipped_lazy_iframes INTEGER NOT NULL,
    iframe_load_failures INTEGER NOT NULL,
    duration_seconds REAL NOT NULL,
    retries INTEGER NOT NULL DEFAULT 0,
    error_detail TEXT,
    checksum INTEGER
);
CREATE TABLE IF NOT EXISTS frames (
    rank INTEGER NOT NULL,
    frame_id INTEGER NOT NULL,
    url TEXT NOT NULL,
    origin TEXT NOT NULL,
    site TEXT NOT NULL,
    parent_id INTEGER,
    depth INTEGER NOT NULL,
    is_local INTEGER NOT NULL,
    headers TEXT NOT NULL,
    iframe_attributes TEXT,
    PRIMARY KEY (rank, frame_id)
);
CREATE TABLE IF NOT EXISTS calls (
    rank INTEGER NOT NULL,
    frame_id INTEGER NOT NULL,
    api TEXT NOT NULL,
    kind TEXT NOT NULL,
    permissions TEXT NOT NULL,
    args TEXT NOT NULL,
    script_url TEXT,
    allowed INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS scripts (
    rank INTEGER NOT NULL,
    frame_id INTEGER NOT NULL,
    url TEXT,
    source TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS prompts (
    rank INTEGER NOT NULL,
    frame_id INTEGER NOT NULL,
    permission TEXT NOT NULL,
    display_site TEXT NOT NULL,
    text TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS quarantine (
    rank INTEGER NOT NULL,
    reason TEXT NOT NULL,
    detail TEXT NOT NULL,
    payload TEXT
);
CREATE INDEX IF NOT EXISTS idx_calls_rank ON calls(rank);
CREATE INDEX IF NOT EXISTS idx_frames_rank ON frames(rank);
CREATE INDEX IF NOT EXISTS idx_scripts_rank ON scripts(rank);
CREATE INDEX IF NOT EXISTS idx_prompts_rank ON prompts(rank);
"""

_VISIT_COLUMNS = ("rank, requested_url, final_url, success, failure, "
                  "top_level_document_count, skipped_lazy_iframes, "
                  "iframe_load_failures, duration_seconds, retries, "
                  "error_detail")


def _visit_from_row(row: tuple) -> SiteVisit:
    return SiteVisit(
        rank=row[0], requested_url=row[1], final_url=row[2],
        success=bool(row[3]), failure=row[4],
        top_level_document_count=row[5],
        skipped_lazy_iframes=row[6],
        iframe_load_failures=row[7], duration_seconds=row[8],
        retries=row[9], error_detail=row[10])


def _frame_from_row(row: tuple) -> FrameRecord:
    return FrameRecord(
        frame_id=row[1], url=row[2], origin=row[3], site=row[4],
        parent_id=row[5], depth=row[6], is_local=bool(row[7]),
        headers=json.loads(row[8]),
        iframe_attributes=(json.loads(row[9])
                           if row[9] is not None else None))


def _call_from_row(row: tuple) -> CallRecord:
    return CallRecord(
        frame_id=row[1], api=row[2], kind=row[3],
        permissions=tuple(json.loads(row[4])),
        args=tuple(json.loads(row[5])),
        script_url=row[6], allowed=bool(row[7]))


def _script_from_row(row: tuple) -> ScriptSourceRecord:
    return ScriptSourceRecord(frame_id=row[1], url=row[2], source=row[3])


def _prompt_from_row(row: tuple) -> PromptRecord:
    return PromptRecord(
        permission=row[2], requesting_frame_id=row[1],
        display_site=row[3], text=row[4])

#: Columns added after the original schema shipped; existing checkpoint
#: databases are migrated in place on open.
_VISITS_MIGRATIONS = (
    ("retries", "INTEGER NOT NULL DEFAULT 0"),
    ("error_detail", "TEXT"),
    # Schema 3: rows written before this migration keep a NULL checksum
    # and show up as "legacy" (not corrupt) in verify() reports.
    ("checksum", "INTEGER"),
)


def _safe_text(text: str, limit: int = 200) -> str:
    """Clip and ASCII-escape untrusted text destined for reports/SQLite."""
    text = text.encode("ascii", "backslashreplace").decode("ascii")
    if len(text) > limit:
        text = text[:limit] + f"... ({len(text)} chars)"
    return text


class CrawlStore:
    """SQLite-backed persistence for crawl datasets.

    One store owns one connection, opened with
    ``check_same_thread=False`` and guarded by a serialized writer lock,
    so pool worker threads can call :meth:`save_visit` directly as each
    site completes.  The journal runs in WAL mode so readers (another
    process tailing the checkpoint) never block the writers.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        # NORMAL is the canonical WAL pairing: commits stop fsyncing the
        # WAL (only checkpoints sync), which at crawl scale cuts the store
        # stage's cost several-fold.  Crash safety is unchanged for the
        # failure mode the resume contract covers — a killed *process*
        # loses nothing — and even an OS-level power loss can only drop
        # the most recent commits, never corrupt the file; verify() and
        # the per-visit checksums catch anything torn.
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._migrate()
        #: Orphan child rows skipped by the most recent
        #: :meth:`load_dataset` call, per table.
        self.last_orphan_counts: dict[str, int] = {}
        #: Rows that failed to decode during the most recent
        #: :meth:`load_dataset` / :meth:`load_visits` call, per table.
        self.last_corrupt_counts: dict[str, int] = {}

    def _migrate(self) -> None:
        columns = {row[1] for row in
                   self._conn.execute("PRAGMA table_info(visits)")}
        for name, spec in _VISITS_MIGRATIONS:
            if name not in columns:
                self._conn.execute(
                    f"ALTER TABLE visits ADD COLUMN {name} {spec}")
        self._conn.commit()

    def flush(self) -> None:
        """Commit and checkpoint the WAL into the main database file.

        Called on graceful shutdown so a subsequently copied/inspected
        database file is complete even if the ``-wal`` sidecar is lost.
        """
        with self._lock:
            self._conn.commit()
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "CrawlStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writing ---------------------------------------------------------------

    def save_visit(self, visit: SiteVisit) -> None:
        """Persist one visit (incremental, mirroring C14).  Thread-safe."""
        checksum = visit_checksum(visit)
        with self._lock:
            conn = self._conn
            conn.execute(
                f"INSERT OR REPLACE INTO visits ({_VISIT_COLUMNS}, checksum) "
                "VALUES (?,?,?,?,?,?,?,?,?,?,?,?)",
                (visit.rank, visit.requested_url, visit.final_url,
                 int(visit.success), visit.failure,
                 visit.top_level_document_count, visit.skipped_lazy_iframes,
                 visit.iframe_load_failures, visit.duration_seconds,
                 visit.retries, visit.error_detail, checksum))
            # A freshly saved rank supersedes any quarantined wreckage.
            conn.execute("DELETE FROM quarantine WHERE rank = ?",
                         (visit.rank,))
            conn.execute("DELETE FROM frames WHERE rank = ?", (visit.rank,))
            conn.execute("DELETE FROM calls WHERE rank = ?", (visit.rank,))
            conn.execute("DELETE FROM scripts WHERE rank = ?", (visit.rank,))
            conn.execute("DELETE FROM prompts WHERE rank = ?", (visit.rank,))
            conn.executemany(
                "INSERT INTO frames VALUES (?,?,?,?,?,?,?,?,?,?)",
                [(visit.rank, f.frame_id, f.url, f.origin, f.site, f.parent_id,
                  f.depth, int(f.is_local), json.dumps(f.headers),
                  json.dumps(f.iframe_attributes)
                  if f.iframe_attributes is not None else None)
                 for f in visit.frames])
            conn.executemany(
                "INSERT INTO calls VALUES (?,?,?,?,?,?,?,?)",
                [(visit.rank, c.frame_id, c.api, c.kind,
                  json.dumps(list(c.permissions)), json.dumps(list(c.args)),
                  c.script_url, int(c.allowed))
                 for c in visit.calls])
            conn.executemany(
                "INSERT INTO scripts VALUES (?,?,?,?)",
                [(visit.rank, s.frame_id, s.url, s.source)
                 for s in visit.scripts])
            conn.executemany(
                "INSERT INTO prompts VALUES (?,?,?,?,?)",
                [(visit.rank, p.requesting_frame_id, p.permission,
                  p.display_site, p.text)
                 for p in visit.prompts])
            conn.commit()
        if _metrics.COUNTING:
            _metrics.REGISTRY.counter("store.visits_saved").inc()

    def save_visits(self, visits: Iterable[SiteVisit], *,
                    chunk_size: int = 256) -> int:
        """Persist many visits with one transaction per ``chunk_size`` chunk.

        The batched counterpart of :meth:`save_visit` — same row encoding,
        same checksum, same quarantine/supersede semantics — but child rows
        are written with one ``executemany`` per table per chunk and a
        single commit per chunk instead of a commit per visit.  This is the
        pool's hot path at scale; per-visit commits dominate the store
        stage otherwise.  Accepts any iterable (including a generator, so a
        whole shard can stream through).  Thread-safe.  Returns the number
        of visits written.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        total = 0
        chunk: list[SiteVisit] = []
        for visit in visits:
            chunk.append(visit)
            if len(chunk) >= chunk_size:
                self._save_chunk(chunk)
                total += len(chunk)
                chunk = []
        if chunk:
            self._save_chunk(chunk)
            total += len(chunk)
        if _metrics.COUNTING and total:
            _metrics.REGISTRY.counter("store.visits_saved").inc(total)
        return total

    def _save_chunk(self, chunk: list[SiteVisit]) -> None:
        """Write one chunk of visits inside a single transaction.

        Child rows of each visit stay contiguous in the ``executemany``
        argument lists, so rowid order within one rank still equals
        insertion order — the invariant :meth:`_attach_children` relies on.

        Checksums and row encoding (the ``json.dumps``-heavy argument
        lists) happen *before* the writer lock is taken: they dominate the
        save's CPU cost and need no connection state, so under a threaded
        pool several workers encode concurrently while only the SQLite
        calls themselves serialize.

        When metrics are on, the writer thread's *CPU* time inside the
        lock is recorded in the ``store.write_seconds`` histogram
        (:func:`time.thread_time`, not wall clock): under a threaded pool
        the GIL regularly deschedules the writer mid-section, so wall
        clock would charge crawl compute — and, timed outside the lock,
        lock-wait once per blocked worker — to the store.  Thread CPU time
        is exactly the work the store itself costs.
        """
        checksums = [visit_checksum(visit) for visit in chunk]
        rank_params = [(visit.rank,) for visit in chunk]
        visit_rows = [
            (visit.rank, visit.requested_url, visit.final_url,
             int(visit.success), visit.failure,
             visit.top_level_document_count, visit.skipped_lazy_iframes,
             visit.iframe_load_failures, visit.duration_seconds,
             visit.retries, visit.error_detail, checksum)
            for visit, checksum in zip(chunk, checksums)]
        frame_rows = [
            (visit.rank, f.frame_id, f.url, f.origin, f.site,
             f.parent_id, f.depth, int(f.is_local),
             json.dumps(f.headers),
             json.dumps(f.iframe_attributes)
             if f.iframe_attributes is not None else None)
            for visit in chunk for f in visit.frames]
        call_rows = [
            (visit.rank, c.frame_id, c.api, c.kind,
             json.dumps(list(c.permissions)), json.dumps(list(c.args)),
             c.script_url, int(c.allowed))
            for visit in chunk for c in visit.calls]
        script_rows = [
            (visit.rank, s.frame_id, s.url, s.source)
            for visit in chunk for s in visit.scripts]
        prompt_rows = [
            (visit.rank, p.requesting_frame_id, p.permission,
             p.display_site, p.text)
            for visit in chunk for p in visit.prompts]
        with self._lock:
            start = time.thread_time() if _metrics.COUNTING else 0.0
            conn = self._conn
            for table in ("quarantine", "frames", "calls", "scripts",
                          "prompts"):
                conn.executemany(
                    f"DELETE FROM {table} WHERE rank = ?",  # noqa: S608
                    rank_params)
            conn.executemany(
                f"INSERT OR REPLACE INTO visits ({_VISIT_COLUMNS}, checksum) "
                "VALUES (?,?,?,?,?,?,?,?,?,?,?,?)", visit_rows)
            conn.executemany(
                "INSERT INTO frames VALUES (?,?,?,?,?,?,?,?,?,?)", frame_rows)
            conn.executemany(
                "INSERT INTO calls VALUES (?,?,?,?,?,?,?,?)", call_rows)
            conn.executemany(
                "INSERT INTO scripts VALUES (?,?,?,?)", script_rows)
            conn.executemany(
                "INSERT INTO prompts VALUES (?,?,?,?,?)", prompt_rows)
            conn.commit()
            if _metrics.COUNTING:
                _metrics.REGISTRY.histogram("store.write_seconds").observe(
                    time.thread_time() - start)

    def save_dataset(self, dataset: CrawlDataset) -> None:
        self.save_visits(dataset.visits)

    # -- reading ----------------------------------------------------------------

    def stored_ranks(self) -> set[int]:
        """Ranks already persisted — the checkpoint/resume frontier."""
        with self._lock:
            return {row[0] for row in
                    self._conn.execute("SELECT rank FROM visits")}

    def stored_checksums(self) -> "dict[int, int | None]":
        """Stored row checksums by rank, in rank order (``None`` marks a
        pre-checksum legacy row).  Cheap — no payload decoding — so the
        process backend can report chunk checksums without re-encoding
        every visit."""
        with self._lock:
            return {row[0]: row[1] for row in self._conn.execute(
                "SELECT rank, checksum FROM visits ORDER BY rank")}

    def load_dataset(self) -> CrawlDataset:
        """Load everything back into dataset form.

        Child rows whose rank has no ``visits`` row (a partially written or
        corrupt checkpoint) are skipped and counted in
        :attr:`last_orphan_counts` with a logged warning, so resuming from
        an interrupted save never crashes.  Rows that fail to *decode*
        (bit-flipped JSON, truncated values) are likewise skipped and
        counted in :attr:`last_corrupt_counts` — run
        ``repro verify-store --repair`` to quarantine them properly.
        """
        dataset = CrawlDataset()
        orphans: Counter = Counter()
        corrupt: Counter = Counter()
        with self._lock:
            conn = self._conn
            for row in conn.execute(
                    f"SELECT {_VISIT_COLUMNS} FROM visits ORDER BY rank"):
                try:
                    dataset.visits.append(_visit_from_row(row))
                except Exception:
                    corrupt["visits"] += 1
            by_rank = {visit.rank: visit for visit in dataset.visits}
            self._attach_children(by_rank, orphans, corrupt=corrupt)
        self.last_orphan_counts = dict(orphans)
        self.last_corrupt_counts = dict(corrupt)
        if _metrics.COUNTING:
            registry = _metrics.REGISTRY
            registry.counter("store.visits_loaded").inc(len(dataset.visits))
            registry.gauge("store.orphan_rows").set(sum(orphans.values()))
            if corrupt:
                registry.counter("store.corrupt_rows").inc(
                    sum(corrupt.values()))
        if orphans:
            detail = ", ".join(f"{table}={count}" for table, count
                               in sorted(orphans.items()))
            logger.warning(
                "skipped orphan rows without a visits entry (%s) in %s "
                "— partially written checkpoint?", detail, self.path)
        self._warn_corrupt(corrupt)
        return dataset

    def _warn_corrupt(self, corrupt: Counter) -> None:
        if not corrupt:
            return
        detail = ", ".join(f"{table}={count}" for table, count
                           in sorted(corrupt.items()))
        logger.warning(
            "skipped rows that failed to decode (%s) in %s — run "
            "`repro verify-store --repair` to quarantine them",
            detail, self.path)

    def _attach_children(self, by_rank: dict[int, SiteVisit],
                         orphans: Counter,
                         where: str = "", params: tuple = (),
                         corrupt: "Counter | None" = None,
                         corrupt_ranks: "dict[int, str] | None" = None
                         ) -> None:
        """Attach frame/call/script/prompt rows to their visits.

        ``ORDER BY rowid`` restores per-visit record order: ``save_visit``
        writes each visit's child rows contiguously, so rowid order within
        one rank equals insertion order even when chunks were saved
        out of rank order.

        With ``corrupt`` given, rows that fail to decode are skipped and
        counted per table instead of raising; ``corrupt_ranks`` (used by
        :meth:`verify`) additionally records which rank each decode
        failure belongs to.
        """
        conn = self._conn
        tables = (
            ("frames", "SELECT rank, frame_id, url, origin, site, parent_id, "
             "depth, is_local, headers, iframe_attributes FROM frames",
             _frame_from_row, lambda visit: visit.frames),
            ("calls", "SELECT rank, frame_id, api, kind, permissions, args, "
             "script_url, allowed FROM calls",
             _call_from_row, lambda visit: visit.calls),
            ("scripts", "SELECT rank, frame_id, url, source FROM scripts",
             _script_from_row, lambda visit: visit.scripts),
            ("prompts", "SELECT rank, frame_id, permission, display_site, "
             "text FROM prompts",
             _prompt_from_row, lambda visit: visit.prompts),
        )
        for table, select, from_row, records_of in tables:
            for row in conn.execute(f"{select}{where} ORDER BY rowid",
                                    params):
                visit = by_rank.get(row[0])
                if visit is None:
                    orphans[table] += 1
                    continue
                try:
                    record = from_row(row)
                except Exception as exc:
                    if corrupt is None:
                        raise
                    corrupt[table] += 1
                    if (corrupt_ranks is not None
                            and row[0] not in corrupt_ranks):
                        corrupt_ranks[row[0]] = _safe_text(
                            f"{table}: {type(exc).__name__}: {exc}")
                    continue
                records_of(visit).append(record)

    def iter_visits(self, *, batch_size: int = _SQL_IN_CHUNK,
                    min_rank: "int | None" = None,
                    max_rank: "int | None" = None
                    ) -> Iterator[SiteVisit]:
        """Stream stored visits in rank order with bounded memory.

        Yields exactly what :meth:`load_dataset` would return, but only
        ``batch_size`` visits (plus their child rows) are resident at a
        time: the visits table is walked with keyset pagination
        (``WHERE rank > last``) and children are attached per batch.  The
        writer lock is taken per batch, not across the whole iteration, so
        concurrent writers are never starved.  Orphan and corrupt rows are
        skipped and counted exactly as in :meth:`load_dataset`;
        :attr:`last_orphan_counts` / :attr:`last_corrupt_counts` are
        populated when the iterator is exhausted.

        ``min_rank`` / ``max_rank`` bound the walk to an inclusive rank
        span — the process-parallel summarize streams one contiguous span
        per worker through this.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        orphans: Counter = Counter()
        corrupt: Counter = Counter()
        last_rank: "int | None" = None
        loaded = 0
        while True:
            with self._lock:
                conn = self._conn
                clauses: list[str] = []
                params: list[int] = []
                if last_rank is not None:
                    clauses.append("rank > ?")
                    params.append(last_rank)
                elif min_rank is not None:
                    clauses.append("rank >= ?")
                    params.append(min_rank)
                if max_rank is not None:
                    clauses.append("rank <= ?")
                    params.append(max_rank)
                where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
                rows = conn.execute(
                    f"SELECT {_VISIT_COLUMNS} FROM visits{where} "
                    "ORDER BY rank LIMIT ?",
                    (*params, batch_size)).fetchall()
                if not rows:
                    break
                last_rank = rows[-1][0]
                by_rank: dict[int, SiteVisit] = {}
                for row in rows:
                    try:
                        by_rank[row[0]] = _visit_from_row(row)
                    except Exception:
                        corrupt["visits"] += 1
                ranks = sorted(by_rank)
                for start in range(0, len(ranks), _SQL_IN_CHUNK):
                    chunk = ranks[start:start + _SQL_IN_CHUNK]
                    marks = ",".join("?" * len(chunk))
                    self._attach_children(
                        by_rank, orphans, f" WHERE rank IN ({marks})",
                        tuple(chunk), corrupt=corrupt)
            for rank in ranks:
                yield by_rank[rank]
                loaded += 1
        self.last_orphan_counts = dict(orphans)
        self.last_corrupt_counts = dict(corrupt)
        if _metrics.COUNTING:
            registry = _metrics.REGISTRY
            registry.counter("store.visits_loaded").inc(loaded)
            if corrupt:
                registry.counter("store.corrupt_rows").inc(
                    sum(corrupt.values()))
        if orphans:
            detail = ", ".join(f"{table}={count}" for table, count
                               in sorted(orphans.items()))
            logger.warning(
                "skipped orphan rows without a visits entry (%s) in %s "
                "— partially written checkpoint?", detail, self.path)
        self._warn_corrupt(corrupt)

    #: Explicit column lists for the ATTACH merge: ``SELECT *`` would
    #: depend on physical column order, which differs between a freshly
    #: created table and one that grew columns via ALTER TABLE migrations.
    _MERGE_CHILD_COLUMNS = {
        "frames": "rank, frame_id, url, origin, site, parent_id, depth, "
                  "is_local, headers, iframe_attributes",
        "calls": "rank, frame_id, api, kind, permissions, args, "
                 "script_url, allowed",
        "scripts": "rank, frame_id, url, source",
        "prompts": "rank, frame_id, permission, display_site, text",
    }

    def merge_from(self, other: "CrawlStore", *,
                   chunk_size: int = 256) -> int:
        """Merge every visit of ``other`` into this store.

        Fast path: ``other``'s rows are copied verbatim inside SQLite via
        ``ATTACH`` + ``INSERT ... SELECT`` — no Python-side decode or
        re-encode, which is what lets a sharded crawl's merge step stay a
        small slice of the store stage.  Shard rows were written by this
        same encoder, so a verbatim copy is byte-for-byte what re-saving
        the visits would produce (checksums included); child rows are
        copied ``ORDER BY rowid`` so per-rank contiguity (the
        :meth:`_attach_children` invariant) survives, and child rows whose
        rank has no ``visits`` row are left behind, matching the streaming
        path's orphan cleansing.  Ranks present in both stores are
        superseded by ``other``'s copy, mirroring :meth:`save_visit`'s
        INSERT OR REPLACE semantics.  If ATTACH fails (e.g. the target's
        SQLite build restricts it), the merge falls back to streaming
        ``other`` through :meth:`save_visits` in ``chunk_size`` batches.
        Returns the number of visits merged.
        """
        if self.path.resolve() == Path(other.path).resolve():
            raise ValueError("cannot merge a store into itself")
        try:
            return self._merge_attached(other)
        except sqlite3.Error:
            logger.warning("ATTACH merge from %s failed; falling back to "
                           "the streaming merge", other.path, exc_info=True)
            return self.save_visits(other.iter_visits(),
                                    chunk_size=chunk_size)

    def _merge_attached(self, other: "CrawlStore") -> int:
        other.flush()  # checkpoint src so a fresh reader sees every row
        with self._lock:
            start = time.thread_time() if _metrics.COUNTING else 0.0
            conn = self._conn
            conn.commit()  # ATTACH is illegal inside a transaction
            conn.execute("ATTACH DATABASE ? AS merge_src",
                         (str(other.path),))
            try:
                count = conn.execute(
                    "SELECT COUNT(*) FROM merge_src.visits").fetchone()[0]
                for table in ("quarantine", "frames", "calls", "scripts",
                              "prompts"):
                    conn.execute(
                        f"DELETE FROM {table} WHERE rank IN "  # noqa: S608
                        "(SELECT rank FROM merge_src.visits)")
                conn.execute(
                    f"INSERT OR REPLACE INTO visits ({_VISIT_COLUMNS}, "
                    f"checksum) SELECT {_VISIT_COLUMNS}, checksum "
                    "FROM merge_src.visits ORDER BY rank")
                for table, columns in self._MERGE_CHILD_COLUMNS.items():
                    conn.execute(
                        f"INSERT INTO {table} ({columns}) "  # noqa: S608
                        f"SELECT {columns} FROM merge_src.{table} "
                        "WHERE rank IN (SELECT rank FROM merge_src.visits) "
                        "ORDER BY rowid")
                conn.commit()
            except BaseException:
                conn.rollback()
                raise
            finally:
                conn.execute("DETACH DATABASE merge_src")
            if _metrics.COUNTING:
                # Separate histogram from save_visits' store.write_seconds:
                # with shard-local worker writes the row encoding happens in
                # worker processes (overlapping crawl compute), so merge
                # cost is the only store work on the parent's critical path
                # and the scale harness accounts for the two separately.
                _metrics.REGISTRY.histogram("store.merge_seconds").observe(
                    time.thread_time() - start)
        if _metrics.COUNTING and count:
            _metrics.REGISTRY.counter("store.visits_saved").inc(count)
        return count

    def load_visits(self, ranks: "Iterable[int]") -> list[SiteVisit]:
        """Load only the given ranks — the targeted resume query.

        Unlike :meth:`load_dataset` this never materialises the whole
        checkpoint; ranks not present in the store are silently skipped.
        Returns visits sorted by rank.
        """
        wanted = sorted(set(ranks))
        by_rank: dict[int, SiteVisit] = {}
        orphans: Counter = Counter()
        corrupt: Counter = Counter()
        with self._lock:
            conn = self._conn
            for start in range(0, len(wanted), _SQL_IN_CHUNK):
                chunk = wanted[start:start + _SQL_IN_CHUNK]
                marks = ",".join("?" * len(chunk))
                where = f" WHERE rank IN ({marks})"
                for row in conn.execute(
                        f"SELECT {_VISIT_COLUMNS} FROM visits{where}",
                        chunk):
                    try:
                        by_rank[row[0]] = _visit_from_row(row)
                    except Exception:
                        corrupt["visits"] += 1
                self._attach_children(by_rank, orphans, where, tuple(chunk),
                                      corrupt=corrupt)
        self.last_corrupt_counts = dict(corrupt)
        if _metrics.COUNTING:
            _metrics.REGISTRY.counter("store.visits_loaded").inc(len(by_rank))
            if corrupt:
                _metrics.REGISTRY.counter("store.corrupt_rows").inc(
                    sum(corrupt.values()))
        self._warn_corrupt(corrupt)
        return [by_rank[rank] for rank in wanted if rank in by_rank]

    # -- SQL-side aggregates ------------------------------------------------------
    #
    # For very large stored crawls it is wasteful to load every record back
    # into Python just to compute adoption counts; these run the headline
    # aggregations inside SQLite and must agree with the in-memory analyses
    # (tested in tests/test_crawler.py).

    def count_successful(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM visits WHERE success = 1").fetchone()
        return int(row[0])

    def count_header_sites(self, header: str = "permissions-policy") -> int:
        """Websites whose top-level document sends ``header``.

        Matches on the JSON *keys* of the stored header map (names are
        persisted lowercased).  A plain ``LIKE '%"name"%'`` would
        false-positive whenever a hostile header *value* contains the
        quoted header name — the PR 5 adversarial corpus produces exactly
        that — so the substring match survives only as a prefilter in the
        fallback path for SQLite builds without the JSON1 extension,
        where each candidate row is re-checked against its parsed keys
        (``json.dumps`` always emits the quoted key, so the prefilter is
        provably a superset)."""
        name = header.lower()
        with self._lock:
            try:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM frames "
                    "WHERE parent_id IS NULL AND EXISTS ("
                    "SELECT 1 FROM json_each(frames.headers) "
                    "WHERE json_each.key = ?)", (name,)
                ).fetchone()
                return int(row[0])
            except sqlite3.OperationalError:
                rows = self._conn.execute(
                    "SELECT headers FROM frames "
                    "WHERE parent_id IS NULL AND headers LIKE ?",
                    (f'%"{name}"%',)
                ).fetchall()
        count = 0
        for (raw,) in rows:
            try:
                parsed = json.loads(raw)
            except (TypeError, ValueError):
                continue
            if isinstance(parsed, dict) and name in parsed:
                count += 1
        return count

    def count_delegating_sites(self) -> int:
        """Websites with at least one direct iframe carrying an allow
        attribute (a superset of true delegation: 'none' opt-outs are
        resolved by the Python analysis, not in SQL)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(DISTINCT rank) FROM frames "
                'WHERE depth = 1 AND iframe_attributes LIKE \'%"allow"%\''
            ).fetchone()
        return int(row[0])

    def top_embedded_sites(self, limit: int = 10) -> list[tuple[str, int]]:
        """Table 3 in SQL: external embedded sites by distinct websites."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT f.site, COUNT(DISTINCT f.rank) AS websites "
                "FROM frames f "
                "JOIN frames top ON top.rank = f.rank AND top.parent_id IS NULL "
                "WHERE f.depth = 1 AND f.is_local = 0 AND f.site != '' "
                "AND f.site != top.site "
                "GROUP BY f.site ORDER BY websites DESC LIMIT ?", (limit,)
            ).fetchall()
        return [(site, int(count)) for site, count in rows]

    def failure_counts(self) -> dict[str, int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT failure, COUNT(*) FROM visits "
                "WHERE success = 0 GROUP BY failure").fetchall()
        return {failure: int(count) for failure, count in rows}

    # -- integrity ---------------------------------------------------------------

    def verify(self, *, repair: bool = False) -> VerifyReport:
        """Recompute every visit checksum against the stored rows.

        Returns a :class:`~repro.crawler.integrity.VerifyReport`.  Rows
        written before the checksum column existed count as ``legacy``
        (unverifiable, not corrupt).  With ``repair=True`` corrupt rows
        are moved into the ``quarantine`` table — their raw values are
        preserved there as a JSON payload for forensics — so subsequent
        :meth:`load_dataset` calls see a clean store.
        """
        report = VerifyReport(path=str(self.path))
        corrupt_ranks: dict[int, str] = {}
        with self._lock:
            conn = self._conn
            row = conn.execute("SELECT COUNT(*) FROM quarantine").fetchone()
            report.previously_quarantined = int(row[0])
            by_rank: dict[int, SiteVisit] = {}
            checksums: dict[int, "int | None"] = {}
            for row in conn.execute(
                    f"SELECT {_VISIT_COLUMNS}, checksum FROM visits "
                    "ORDER BY rank"):
                report.total_rows += 1
                try:
                    by_rank[row[0]] = _visit_from_row(row)
                    checksums[row[0]] = row[-1]
                except Exception as exc:
                    corrupt_ranks[row[0]] = _safe_text(
                        f"visits: {type(exc).__name__}: {exc}")
            self._attach_children(by_rank, Counter(), corrupt=Counter(),
                                  corrupt_ranks=corrupt_ranks)
            for rank in sorted(by_rank):
                detail = corrupt_ranks.get(rank)
                if detail is not None:
                    continue  # reported below, once, as a decode error
                stored = checksums[rank]
                if stored is None:
                    report.legacy_rows += 1
                    continue
                actual = visit_checksum(by_rank[rank])
                if actual == stored:
                    report.verified_rows += 1
                else:
                    report.corrupt.append(CorruptRow(
                        rank, CHECKSUM_MISMATCH,
                        f"stored {stored}, recomputed {actual}"))
            for rank, detail in corrupt_ranks.items():
                report.corrupt.append(CorruptRow(rank, DECODE_ERROR, detail))
            report.corrupt.sort(key=lambda bad: bad.rank)
            if repair and report.corrupt:
                for bad in report.corrupt:
                    self._quarantine_rank(bad)
                conn.commit()
                report.quarantined = len(report.corrupt)
        if _metrics.COUNTING:
            registry = _metrics.REGISTRY
            if report.corrupt:
                registry.counter("store.corrupt_rows").inc(
                    len(report.corrupt))
            if report.quarantined:
                registry.counter("store.quarantined_rows").inc(
                    report.quarantined)
        return report

    def _quarantine_rank(self, bad: CorruptRow) -> None:
        """Move one corrupt rank out of the live tables (caller commits)."""
        conn = self._conn
        payload: dict[str, list] = {}
        for table in ("visits", "frames", "calls", "scripts", "prompts"):
            try:
                rows = conn.execute(
                    f"SELECT * FROM {table} WHERE rank = ?",  # noqa: S608
                    (bad.rank,)).fetchall()
                payload[table] = [list(row) for row in rows]
            except Exception:  # pragma: no cover - row too broken to read
                payload[table] = []
        try:
            payload_json = json.dumps(payload, ensure_ascii=True,
                                      default=repr)
        except Exception:  # pragma: no cover - unserializable wreckage
            payload_json = None
        conn.execute(
            "INSERT INTO quarantine (rank, reason, detail, payload) "
            "VALUES (?,?,?,?)",
            (bad.rank, bad.reason, _safe_text(bad.detail), payload_json))
        for table in ("visits", "frames", "calls", "scripts", "prompts"):
            conn.execute(f"DELETE FROM {table} WHERE rank = ?",  # noqa: S608
                         (bad.rank,))

    def quarantine_rank(self, rank: int, *, reason: str,
                        detail: str = "") -> None:
        """Quarantine a rank directly (no corrupt row required).

        The crawl supervisor's poison-visit path: a rank whose visit
        repeatedly kills or hangs worker processes is recorded here —
        same table and semantics as :meth:`verify`'s repair quarantine —
        and any live rows it may have are dropped, so the dataset equals
        a crawl that never attempted the rank.  A later
        :meth:`save_visit` of the rank supersedes the entry, like any
        other quarantined rank.  Thread-safe.
        """
        with self._lock:
            conn = self._conn
            conn.execute("DELETE FROM quarantine WHERE rank = ?", (rank,))
            conn.execute(
                "INSERT INTO quarantine (rank, reason, detail, payload) "
                "VALUES (?,?,?,?)",
                (rank, reason, _safe_text(detail), None))
            for table in ("visits", "frames", "calls", "scripts",
                          "prompts"):
                conn.execute(
                    f"DELETE FROM {table} WHERE rank = ?",  # noqa: S608
                    (rank,))
            conn.commit()
        if _metrics.COUNTING:
            _metrics.REGISTRY.counter("store.quarantined_rows").inc()

    def quarantine_rows(self) -> list[tuple[int, str, str]]:
        """``(rank, reason, detail)`` for every quarantined row."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT rank, reason, detail FROM quarantine ORDER BY rank"
            ).fetchall()
        return [(int(rank), reason, detail) for rank, reason, detail in rows]


def merge_stores(target: "str | Path", shards: "Iterable[str | Path]", *,
                 chunk_size: int = 256) -> int:
    """Merge shard store files into ``target``, in the order given.

    Shards produced by a sharded crawl hold disjoint rank ranges, so the
    merge is deterministic regardless of shard completion order: every
    reader walks the merged store ``ORDER BY rank``.  The target is
    flushed (WAL checkpointed) after the merge.  Returns the total number
    of visits merged.
    """
    total = 0
    with CrawlStore(target) as store:
        for shard_path in shards:
            with CrawlStore(shard_path) as shard:
                total += store.merge_from(shard, chunk_size=chunk_size)
        store.flush()
    return total


class JsonlImportError(ValueError):
    """A JSONL import failed: a malformed line (in ``on_error="raise"``
    mode) or a count-trailer mismatch indicating truncation."""


#: Key of the final export line carrying the expected record count.
_TRAILER_KEY = "__repro_jsonl_trailer__"

#: Valid values for the importers' ``on_error`` argument.
JSONL_ON_ERROR = ("raise", "skip")


@dataclass
class JsonlStats:
    """Out-parameter for :func:`import_jsonl` / :func:`iter_jsonl`:
    what happened during one import pass."""

    imported: int = 0
    skipped: int = 0
    #: Count declared by the export trailer, or ``None`` for legacy
    #: exports written before the trailer existed.
    trailer_count: "int | None" = None


def export_jsonl(visits: Iterable[SiteVisit], path: "str | Path") -> int:
    """Export visits as JSON lines; returns the number written.

    The export carries the *full* record — frames, calls, scripts with
    sources, prompts, durations, retry and error metadata — so
    :func:`import_jsonl` round-trips exactly what the SQLite store holds.

    The file is written to a ``.tmp`` sibling and atomically renamed into
    place (the same pattern the measurement cache uses), so a crash
    mid-export never leaves a half-written file under the real name.  The
    last line is a count trailer the importer verifies, so silent
    truncation *after* a completed export is also detectable.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    count = 0
    with open(tmp, "w", encoding="utf-8") as handle:
        for visit in visits:
            handle.write(json.dumps(_visit_to_dict(visit)) + "\n")
            count += 1
        handle.write(json.dumps({_TRAILER_KEY: {"count": count}}) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return count


def import_jsonl(path: "str | Path", *, on_error: str = "raise",
                 stats: "JsonlStats | None" = None) -> list[SiteVisit]:
    """Inverse of :func:`export_jsonl`: rebuild the visit records.

    Args:
        path: The JSONL file.
        on_error: ``"raise"`` (default) raises :class:`JsonlImportError`
            on the first malformed line or on a count-trailer mismatch;
            ``"skip"`` drops malformed lines with a counted warning and
            keeps going — the CLI import path uses this.
        stats: Optional :class:`JsonlStats` filled in with
            imported/skipped counts for caller-side reporting.
    """
    return list(iter_jsonl(path, on_error=on_error, stats=stats))


def iter_jsonl(path: "str | Path", *, on_error: str = "raise",
               stats: "JsonlStats | None" = None) -> Iterator[SiteVisit]:
    """Streaming variant of :func:`import_jsonl` for very large exports."""
    if on_error not in JSONL_ON_ERROR:
        raise ValueError(
            f"on_error must be one of {JSONL_ON_ERROR}, got {on_error!r}")
    if stats is None:
        stats = JsonlStats()
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                if isinstance(data, dict) and _TRAILER_KEY in data:
                    stats.trailer_count = int(data[_TRAILER_KEY]["count"])
                    continue
                visit = _visit_from_dict(data)
            except Exception as exc:
                if on_error == "raise":
                    raise JsonlImportError(
                        f"{path}:{lineno}: malformed record "
                        f"({type(exc).__name__}: {_safe_text(str(exc))})"
                    ) from exc
                stats.skipped += 1
                continue
            stats.imported += 1
            yield visit
    if stats.skipped:
        if _metrics.COUNTING:
            _metrics.REGISTRY.counter("store.jsonl_skipped").inc(
                stats.skipped)
        logger.warning("skipped %d malformed JSONL line(s) in %s",
                       stats.skipped, path)
    if (stats.trailer_count is not None
            and stats.trailer_count != stats.imported + stats.skipped):
        message = (f"{path}: trailer declares {stats.trailer_count} "
                   f"records but {stats.imported + stats.skipped} were "
                   f"read — truncated export?")
        if on_error == "raise":
            raise JsonlImportError(message)
        logger.warning("%s", message)


def _visit_to_dict(visit: SiteVisit) -> dict:
    return {
        "rank": visit.rank,
        "requested_url": visit.requested_url,
        "final_url": visit.final_url,
        "success": visit.success,
        "failure": visit.failure,
        "top_level_document_count": visit.top_level_document_count,
        "skipped_lazy_iframes": visit.skipped_lazy_iframes,
        "iframe_load_failures": visit.iframe_load_failures,
        "duration_seconds": visit.duration_seconds,
        "retries": visit.retries,
        "error_detail": visit.error_detail,
        "frames": [
            {"frame_id": f.frame_id, "url": f.url, "origin": f.origin,
             "site": f.site, "parent_id": f.parent_id, "depth": f.depth,
             "is_local": f.is_local, "headers": f.headers,
             "iframe_attributes": f.iframe_attributes}
            for f in visit.frames],
        "calls": [
            {"frame_id": c.frame_id, "api": c.api, "kind": c.kind,
             "permissions": list(c.permissions), "args": list(c.args),
             "script_url": c.script_url, "allowed": c.allowed}
            for c in visit.calls],
        "scripts": [
            {"frame_id": s.frame_id, "url": s.url, "source": s.source}
            for s in visit.scripts],
        "prompts": [
            {"permission": p.permission,
             "requesting_frame_id": p.requesting_frame_id,
             "display_site": p.display_site, "text": p.text}
            for p in visit.prompts],
    }


def _visit_from_dict(data: dict) -> SiteVisit:
    visit = SiteVisit(
        rank=data["rank"],
        requested_url=data["requested_url"],
        final_url=data["final_url"],
        success=data["success"],
        failure=data.get("failure"),
        top_level_document_count=data.get("top_level_document_count", 1),
        skipped_lazy_iframes=data.get("skipped_lazy_iframes", 0),
        iframe_load_failures=data.get("iframe_load_failures", 0),
        duration_seconds=data.get("duration_seconds", 0.0),
        retries=data.get("retries", 0),
        error_detail=data.get("error_detail"),
    )
    for f in data.get("frames", ()):
        visit.frames.append(FrameRecord(
            frame_id=f["frame_id"], url=f["url"], origin=f["origin"],
            site=f["site"], parent_id=f["parent_id"], depth=f["depth"],
            is_local=f["is_local"], headers=f["headers"],
            iframe_attributes=f["iframe_attributes"]))
    for c in data.get("calls", ()):
        visit.calls.append(CallRecord(
            frame_id=c["frame_id"], api=c["api"], kind=c["kind"],
            permissions=tuple(c["permissions"]), args=tuple(c["args"]),
            script_url=c["script_url"], allowed=c["allowed"]))
    for s in data.get("scripts", ()):
        visit.scripts.append(ScriptSourceRecord(
            frame_id=s["frame_id"], url=s["url"], source=s["source"]))
    for p in data.get("prompts", ()):
        visit.prompts.append(PromptRecord(
            permission=p["permission"],
            requesting_frame_id=p["requesting_frame_id"],
            display_site=p["display_site"], text=p["text"]))
    return visit
