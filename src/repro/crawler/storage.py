"""Crawl persistence: SQLite database plus JSONL export.

The paper's wrapper stores all collected data in a database immediately
after each site completes (Appendix A.2, C14).  :class:`CrawlStore`
reproduces that: one SQLite file with ``visits``, ``frames``, ``calls`` and
``scripts`` tables, savable incrementally and loadable back into
:class:`~repro.crawler.pool.CrawlDataset` form so analyses can run without
re-crawling.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Iterable

from repro.crawler.pool import CrawlDataset
from repro.crawler.records import (
    CallRecord,
    FrameRecord,
    PromptRecord,
    ScriptSourceRecord,
    SiteVisit,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS visits (
    rank INTEGER PRIMARY KEY,
    requested_url TEXT NOT NULL,
    final_url TEXT NOT NULL,
    success INTEGER NOT NULL,
    failure TEXT,
    top_level_document_count INTEGER NOT NULL,
    skipped_lazy_iframes INTEGER NOT NULL,
    iframe_load_failures INTEGER NOT NULL,
    duration_seconds REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS frames (
    rank INTEGER NOT NULL,
    frame_id INTEGER NOT NULL,
    url TEXT NOT NULL,
    origin TEXT NOT NULL,
    site TEXT NOT NULL,
    parent_id INTEGER,
    depth INTEGER NOT NULL,
    is_local INTEGER NOT NULL,
    headers TEXT NOT NULL,
    iframe_attributes TEXT,
    PRIMARY KEY (rank, frame_id)
);
CREATE TABLE IF NOT EXISTS calls (
    rank INTEGER NOT NULL,
    frame_id INTEGER NOT NULL,
    api TEXT NOT NULL,
    kind TEXT NOT NULL,
    permissions TEXT NOT NULL,
    args TEXT NOT NULL,
    script_url TEXT,
    allowed INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS scripts (
    rank INTEGER NOT NULL,
    frame_id INTEGER NOT NULL,
    url TEXT,
    source TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS prompts (
    rank INTEGER NOT NULL,
    frame_id INTEGER NOT NULL,
    permission TEXT NOT NULL,
    display_site TEXT NOT NULL,
    text TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_calls_rank ON calls(rank);
CREATE INDEX IF NOT EXISTS idx_frames_rank ON frames(rank);
CREATE INDEX IF NOT EXISTS idx_scripts_rank ON scripts(rank);
"""


class CrawlStore:
    """SQLite-backed persistence for crawl datasets."""

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CrawlStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writing ---------------------------------------------------------------

    def save_visit(self, visit: SiteVisit) -> None:
        """Persist one visit (incremental, mirroring C14)."""
        conn = self._conn
        conn.execute(
            "INSERT OR REPLACE INTO visits VALUES (?,?,?,?,?,?,?,?,?)",
            (visit.rank, visit.requested_url, visit.final_url,
             int(visit.success), visit.failure,
             visit.top_level_document_count, visit.skipped_lazy_iframes,
             visit.iframe_load_failures, visit.duration_seconds))
        conn.execute("DELETE FROM frames WHERE rank = ?", (visit.rank,))
        conn.execute("DELETE FROM calls WHERE rank = ?", (visit.rank,))
        conn.execute("DELETE FROM scripts WHERE rank = ?", (visit.rank,))
        conn.execute("DELETE FROM prompts WHERE rank = ?", (visit.rank,))
        conn.executemany(
            "INSERT INTO frames VALUES (?,?,?,?,?,?,?,?,?,?)",
            [(visit.rank, f.frame_id, f.url, f.origin, f.site, f.parent_id,
              f.depth, int(f.is_local), json.dumps(f.headers),
              json.dumps(f.iframe_attributes)
              if f.iframe_attributes is not None else None)
             for f in visit.frames])
        conn.executemany(
            "INSERT INTO calls VALUES (?,?,?,?,?,?,?,?)",
            [(visit.rank, c.frame_id, c.api, c.kind,
              json.dumps(list(c.permissions)), json.dumps(list(c.args)),
              c.script_url, int(c.allowed))
             for c in visit.calls])
        conn.executemany(
            "INSERT INTO scripts VALUES (?,?,?,?)",
            [(visit.rank, s.frame_id, s.url, s.source)
             for s in visit.scripts])
        conn.executemany(
            "INSERT INTO prompts VALUES (?,?,?,?,?)",
            [(visit.rank, p.requesting_frame_id, p.permission,
              p.display_site, p.text)
             for p in visit.prompts])
        conn.commit()

    def save_dataset(self, dataset: CrawlDataset) -> None:
        for visit in dataset.visits:
            self.save_visit(visit)

    # -- reading ----------------------------------------------------------------

    def load_dataset(self) -> CrawlDataset:
        dataset = CrawlDataset()
        conn = self._conn
        for row in conn.execute(
                "SELECT rank, requested_url, final_url, success, failure, "
                "top_level_document_count, skipped_lazy_iframes, "
                "iframe_load_failures, duration_seconds "
                "FROM visits ORDER BY rank"):
            visit = SiteVisit(
                rank=row[0], requested_url=row[1], final_url=row[2],
                success=bool(row[3]), failure=row[4],
                top_level_document_count=row[5], skipped_lazy_iframes=row[6],
                iframe_load_failures=row[7], duration_seconds=row[8])
            dataset.visits.append(visit)
        by_rank = {visit.rank: visit for visit in dataset.visits}
        for row in conn.execute(
                "SELECT rank, frame_id, url, origin, site, parent_id, depth, "
                "is_local, headers, iframe_attributes FROM frames"):
            by_rank[row[0]].frames.append(FrameRecord(
                frame_id=row[1], url=row[2], origin=row[3], site=row[4],
                parent_id=row[5], depth=row[6], is_local=bool(row[7]),
                headers=json.loads(row[8]),
                iframe_attributes=(json.loads(row[9])
                                   if row[9] is not None else None)))
        for row in conn.execute(
                "SELECT rank, frame_id, api, kind, permissions, args, "
                "script_url, allowed FROM calls"):
            by_rank[row[0]].calls.append(CallRecord(
                frame_id=row[1], api=row[2], kind=row[3],
                permissions=tuple(json.loads(row[4])),
                args=tuple(json.loads(row[5])),
                script_url=row[6], allowed=bool(row[7])))
        for row in conn.execute(
                "SELECT rank, frame_id, url, source FROM scripts"):
            by_rank[row[0]].scripts.append(ScriptSourceRecord(
                frame_id=row[1], url=row[2], source=row[3]))
        for row in conn.execute(
                "SELECT rank, frame_id, permission, display_site, text "
                "FROM prompts"):
            by_rank[row[0]].prompts.append(PromptRecord(
                permission=row[2], requesting_frame_id=row[1],
                display_site=row[3], text=row[4]))
        return dataset


    # -- SQL-side aggregates ------------------------------------------------------
    #
    # For very large stored crawls it is wasteful to load every record back
    # into Python just to compute adoption counts; these run the headline
    # aggregations inside SQLite and must agree with the in-memory analyses
    # (tested in tests/test_crawler.py).

    def count_successful(self) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM visits WHERE success = 1").fetchone()
        return int(row[0])

    def count_header_sites(self, header: str = "permissions-policy") -> int:
        """Websites whose top-level document sends ``header``."""
        pattern = f'%"{header}"%'
        row = self._conn.execute(
            "SELECT COUNT(*) FROM frames "
            "WHERE parent_id IS NULL AND headers LIKE ?", (pattern,)
        ).fetchone()
        return int(row[0])

    def count_delegating_sites(self) -> int:
        """Websites with at least one direct iframe carrying an allow
        attribute (a superset of true delegation: 'none' opt-outs are
        resolved by the Python analysis, not in SQL)."""
        row = self._conn.execute(
            "SELECT COUNT(DISTINCT rank) FROM frames "
            'WHERE depth = 1 AND iframe_attributes LIKE \'%"allow"%\''
        ).fetchone()
        return int(row[0])

    def top_embedded_sites(self, limit: int = 10) -> list[tuple[str, int]]:
        """Table 3 in SQL: external embedded sites by distinct websites."""
        rows = self._conn.execute(
            "SELECT f.site, COUNT(DISTINCT f.rank) AS websites "
            "FROM frames f "
            "JOIN frames top ON top.rank = f.rank AND top.parent_id IS NULL "
            "WHERE f.depth = 1 AND f.is_local = 0 AND f.site != '' "
            "AND f.site != top.site "
            "GROUP BY f.site ORDER BY websites DESC LIMIT ?", (limit,)
        ).fetchall()
        return [(site, int(count)) for site, count in rows]

    def failure_counts(self) -> dict[str, int]:
        rows = self._conn.execute(
            "SELECT failure, COUNT(*) FROM visits "
            "WHERE success = 0 GROUP BY failure").fetchall()
        return {failure: int(count) for failure, count in rows}


def export_jsonl(visits: Iterable[SiteVisit], path: "str | Path") -> int:
    """Export visits as JSON lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for visit in visits:
            handle.write(json.dumps(_visit_to_dict(visit)) + "\n")
            count += 1
    return count


def _visit_to_dict(visit: SiteVisit) -> dict:
    return {
        "rank": visit.rank,
        "requested_url": visit.requested_url,
        "final_url": visit.final_url,
        "success": visit.success,
        "failure": visit.failure,
        "frames": [
            {"frame_id": f.frame_id, "url": f.url, "origin": f.origin,
             "site": f.site, "parent_id": f.parent_id, "depth": f.depth,
             "is_local": f.is_local, "headers": f.headers,
             "iframe_attributes": f.iframe_attributes}
            for f in visit.frames],
        "calls": [
            {"frame_id": c.frame_id, "api": c.api, "kind": c.kind,
             "permissions": list(c.permissions), "args": list(c.args),
             "script_url": c.script_url, "allowed": c.allowed}
            for c in visit.calls],
        "script_count": len(visit.scripts),
    }
