"""Resource guards: input caps, a per-visit watchdog, per-origin breakers.

The open web is hostile input (DESIGN.md §4g): a page can send megabyte
headers, nest iframes a hundred deep, or inline scripts large enough to
blow the store.  The paper's crawler survived nine days of that; this
module gives the reproduction the same armour without giving up its
determinism invariant:

* :class:`ResourceGuards` — declarative caps carried on
  :class:`~repro.crawler.crawler.CrawlConfig` (so the process backend
  ships them to workers for free).  ``None`` caps are disabled; the
  default config has no guards at all, so guarded-off crawls stay
  byte-identical with every earlier release.
* :class:`GuardedFetcher` — wraps any fetcher and *truncates* oversized
  input instead of failing the visit: headers, ``allow`` attributes and
  script sources are clipped deterministically, each clip recorded as a
  taxonomy-tagged :class:`GuardEvent` that flows into
  :class:`~repro.crawler.telemetry.CrawlTelemetry` and the
  ``guard.truncations`` metric.  Fetched content is copied before
  clipping — the synthetic web memoizes content objects, which must stay
  pristine for other visits.
* :class:`CircuitBreaker` — per-origin, opens after N consecutive
  non-transient failures and half-opens on an *attempt-count* schedule
  (never wall clock), so a visit stops hammering a dead origin but the
  decision sequence is a pure function of the fetch sequence.  A rejected
  fetch raises :class:`CircuitOpenError`, an ``unreachable`` subclass:
  non-transient, so it composes with
  :class:`~repro.crawler.resilience.RetryPolicy` by *stopping* retries
  rather than feeding them.

Everything here is per-visit scoped: the pool builds one crawler (and
hence one guard layer and one breaker) per visit, which keeps results
independent of worker count and resume boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from urllib.parse import urlsplit

from repro.browser.page import Fetcher, FetchResponse
from repro.crawler.errors import CrawlError, UnreachableError
from repro.obs import metrics as _metrics

#: Stable ``kind`` tags for guard events (telemetry and reports aggregate
#: on these).
GUARD_HEADER_TRUNCATED = "guard-header-truncated"
GUARD_ALLOW_TRUNCATED = "guard-allow-truncated"
GUARD_SCRIPT_TRUNCATED = "guard-script-truncated"
GUARD_FRAMES_CAPPED = "guard-frames-capped"
GUARD_WATCHDOG = "guard-watchdog-deadline"
GUARD_BREAKER_OPEN = "guard-breaker-open"


class CircuitOpenError(UnreachableError):
    """Fetch rejected because the origin's circuit is open.

    Subclasses ``unreachable`` deliberately: the breaker only opens on
    non-transient failures, and ``unreachable`` is the non-retried class,
    so an open circuit also stops :class:`RetryPolicy` retries.
    """


@dataclass(frozen=True)
class GuardEvent:
    """One guard intervention during a visit."""

    kind: str
    url: str
    detail: str = ""


@dataclass(frozen=True)
class ResourceGuards:
    """Input caps and breaker thresholds; ``None`` disables a guard.

    Attributes:
        watchdog_deadline_seconds: Per-visit deadline over the *simulated*
            duration; a successful visit exceeding it becomes a
            ``final-update-timeout`` failure (the paper's 90 s hard
            timeout, enforced deterministically).
        max_header_bytes: Cap per header *value* (UTF-8 bytes); longer
            values are clipped.
        max_frames_per_visit: Cap on stored frames per visit; excess
            frames (and their calls/scripts/prompts) are dropped in load
            order.
        max_allow_attr_length: Cap per iframe ``allow`` attribute
            (characters).
        max_script_bytes: Cap per script source (UTF-8 bytes); operations
            are untouched, only the stored text is clipped.
        breaker_failure_threshold: Consecutive non-transient failures per
            origin before its circuit opens; ``None`` disables the
            breaker.
        breaker_cooldown_attempts: Rejected attempts between half-open
            probes once a circuit is open.
    """

    watchdog_deadline_seconds: "float | None" = None
    max_header_bytes: "int | None" = None
    max_frames_per_visit: "int | None" = None
    max_allow_attr_length: "int | None" = None
    max_script_bytes: "int | None" = None
    breaker_failure_threshold: "int | None" = None
    breaker_cooldown_attempts: int = 2

    def __post_init__(self) -> None:
        for name in ("max_header_bytes", "max_frames_per_visit",
                     "max_allow_attr_length", "max_script_bytes",
                     "breaker_failure_threshold"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 or None")
        if (self.watchdog_deadline_seconds is not None
                and self.watchdog_deadline_seconds <= 0):
            raise ValueError("watchdog_deadline_seconds must be > 0 or None")
        if self.breaker_cooldown_attempts < 1:
            raise ValueError("breaker_cooldown_attempts must be >= 1")

    @property
    def caps_fetches(self) -> bool:
        """Whether any fetch-level guard is active (fetcher gets wrapped)."""
        return any(value is not None for value in (
            self.max_header_bytes, self.max_allow_attr_length,
            self.max_script_bytes, self.breaker_failure_threshold))


#: Breaker circuit states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class _Circuit:
    state: str = CLOSED
    consecutive_failures: int = 0
    #: Attempts rejected since the circuit opened (drives the half-open
    #: probe schedule).
    rejected_since_open: int = 0


class CircuitBreaker:
    """Per-origin circuit breaker with an attempt-count half-open schedule.

    ``allow`` / ``record_failure`` / ``record_success`` are pure functions
    of the call sequence — no clocks — so a crawl that replays the same
    fetch sequence takes identical breaker decisions, regardless of
    backend, worker count or resume boundary.
    """

    def __init__(self, *, failure_threshold: int = 3,
                 cooldown_attempts: int = 2) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_attempts < 1:
            raise ValueError("cooldown_attempts must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_attempts = cooldown_attempts
        self._circuits: dict[str, _Circuit] = {}
        #: Open transitions over this breaker's lifetime.
        self.opened_count = 0
        #: Fetches rejected by an open circuit.
        self.short_circuits = 0

    def _circuit(self, origin: str) -> _Circuit:
        circuit = self._circuits.get(origin)
        if circuit is None:
            circuit = self._circuits[origin] = _Circuit()
        return circuit

    def state(self, origin: str) -> str:
        return self._circuit(origin).state

    def allow(self, origin: str) -> bool:
        """Whether a fetch to ``origin`` may proceed right now.

        While open, every ``cooldown_attempts``-th rejected attempt is let
        through as a half-open probe; its outcome closes or re-opens the
        circuit.
        """
        circuit = self._circuit(origin)
        if circuit.state == CLOSED or circuit.state == HALF_OPEN:
            return True
        circuit.rejected_since_open += 1
        if circuit.rejected_since_open >= self.cooldown_attempts:
            circuit.state = HALF_OPEN
            return True
        self.short_circuits += 1
        if _metrics.COUNTING:
            _metrics.REGISTRY.counter("breaker.short_circuits").inc()
        return False

    def record_success(self, origin: str) -> None:
        circuit = self._circuit(origin)
        circuit.state = CLOSED
        circuit.consecutive_failures = 0
        circuit.rejected_since_open = 0

    def record_failure(self, origin: str, *, transient: bool) -> None:
        """Count one failed fetch; transient failures never trip circuits
        (they are the retry policy's business, not the breaker's)."""
        circuit = self._circuit(origin)
        if transient:
            return
        circuit.consecutive_failures += 1
        if (circuit.state == HALF_OPEN
                or circuit.consecutive_failures >= self.failure_threshold):
            if circuit.state != OPEN:
                self.opened_count += 1
                if _metrics.COUNTING:
                    _metrics.REGISTRY.counter("breaker.open").inc()
            circuit.state = OPEN
            circuit.rejected_since_open = 0

    def forget(self, origin: str) -> None:
        """Drop an origin's circuit entirely (it re-registers closed on
        next use).  Lets long-lived owners — e.g. the service rate
        limiter evicting idle clients — bound the breaker's memory."""
        self._circuits.pop(origin, None)

    def open_origins(self) -> list[str]:
        return sorted(origin for origin, circuit in self._circuits.items()
                      if circuit.state == OPEN)


def origin_key(url: str) -> str:
    """The breaker's origin bucket for a URL: ``scheme://netloc``
    lowercased (local schemes bucket by scheme alone)."""
    parts = urlsplit(url)
    if not parts.netloc:
        return f"{parts.scheme.lower()}:"
    return f"{parts.scheme.lower()}://{parts.netloc.lower()}"


def _clip_bytes(text: str, limit: int) -> "str | None":
    """Clip ``text`` to at most ``limit`` UTF-8 bytes (never splitting a
    code point); returns ``None`` when no clipping was needed."""
    encoded = text.encode("utf-8", "surrogatepass")
    if len(encoded) <= limit:
        return None
    return encoded[:limit].decode("utf-8", "ignore")


class GuardedFetcher:
    """Applies :class:`ResourceGuards` fetch-level caps over any fetcher.

    Truncations are recorded into ``events`` (a shared list the owning
    crawler also appends watchdog events to) and counted in the
    ``guard.truncations`` metric.  Content objects are copied before
    clipping — the inner fetcher may serve shared, memoized content.
    """

    def __init__(self, inner: Fetcher, guards: ResourceGuards,
                 events: "list[GuardEvent] | None" = None) -> None:
        self.inner = inner
        self.guards = guards
        self.events: list[GuardEvent] = events if events is not None else []
        self.breaker: "CircuitBreaker | None" = None
        if guards.breaker_failure_threshold is not None:
            self.breaker = CircuitBreaker(
                failure_threshold=guards.breaker_failure_threshold,
                cooldown_attempts=guards.breaker_cooldown_attempts)

    def _event(self, kind: str, url: str, detail: str) -> None:
        self.events.append(GuardEvent(kind, url, detail))
        if _metrics.COUNTING:
            _metrics.REGISTRY.counter("guard.truncations").inc()

    def fetch(self, url: str) -> FetchResponse:
        breaker = self.breaker
        origin = origin_key(url) if breaker is not None else ""
        if breaker is not None and not breaker.allow(origin):
            self.events.append(GuardEvent(
                GUARD_BREAKER_OPEN, url, f"circuit open for {origin}"))
            raise CircuitOpenError(f"circuit open for {origin}: {url}")
        try:
            response = self.inner.fetch(url)
        except CrawlError as exc:
            if breaker is not None:
                from repro.crawler.errors import TRANSIENT_TAXONOMIES
                breaker.record_failure(
                    origin, transient=exc.taxonomy in TRANSIENT_TAXONOMIES)
            raise
        except Exception:
            if breaker is not None:
                breaker.record_failure(origin, transient=False)
            raise
        if breaker is not None:
            breaker.record_success(origin)
        return self._apply_caps(url, response)

    def _apply_caps(self, url: str,
                    response: FetchResponse) -> FetchResponse:
        guards = self.guards
        headers = response.headers
        if guards.max_header_bytes is not None:
            clipped_headers: "dict[str, str] | None" = None
            for name, value in headers.items():
                clipped = _clip_bytes(value, guards.max_header_bytes)
                if clipped is None:
                    continue
                if clipped_headers is None:
                    clipped_headers = dict(headers)
                clipped_headers[name] = clipped
                self._event(GUARD_HEADER_TRUNCATED, url,
                            f"{name}: {len(value)} chars -> "
                            f"{guards.max_header_bytes} bytes")
            if clipped_headers is not None:
                headers = clipped_headers
        content = response.content
        new_scripts = None
        if guards.max_script_bytes is not None:
            for index, script in enumerate(content.scripts):
                clipped = _clip_bytes(script.source, guards.max_script_bytes)
                if clipped is None:
                    continue
                if new_scripts is None:
                    new_scripts = list(content.scripts)
                new_scripts[index] = replace(script, source=clipped)
                self._event(GUARD_SCRIPT_TRUNCATED, url,
                            f"script[{index}] ({script.url or 'inline'}): "
                            f"{len(script.source)} chars -> "
                            f"{guards.max_script_bytes} bytes")
        new_iframes = None
        if guards.max_allow_attr_length is not None:
            for index, iframe in enumerate(content.iframes):
                allow = iframe.allow
                if allow is None or len(allow) <= guards.max_allow_attr_length:
                    continue
                if new_iframes is None:
                    new_iframes = list(content.iframes)
                new_iframes[index] = replace(
                    iframe, allow=allow[:guards.max_allow_attr_length])
                self._event(GUARD_ALLOW_TRUNCATED, url,
                            f"iframe[{index}] allow: {len(allow)} chars -> "
                            f"{guards.max_allow_attr_length}")
        if new_scripts is None and new_iframes is None:
            if headers is response.headers:
                return response
            return replace(response, headers=headers)
        new_content = replace(
            content,
            scripts=new_scripts if new_scripts is not None
            else list(content.scripts),
            iframes=new_iframes if new_iframes is not None
            else list(content.iframes))
        return replace(response, headers=headers, content=new_content)
