"""Crawl observability: the telemetry collector behind ``crawl --progress``.

The paper's nine-day, 40-worker run was only operable because the authors
could see it: which workers were alive, how the failure taxonomy was
filling in, and whether throughput held.  :class:`CrawlTelemetry` collects
exactly that from a :class:`~repro.crawler.pool.CrawlerPool` run —
per-worker visit counts, retry counts, failure-taxonomy counters, rolling
throughput (sites/second of wall clock and simulated seconds/site), and
queue depth — behind a single lock so worker threads can report freely.

Telemetry is observability only: it reads wall-clock time and thread
names, and none of it feeds back into the dataset, so determinism of the
crawl results is untouched.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.crawler.records import SiteVisit
from repro.obs import metrics as _metrics


@dataclass(frozen=True)
class TelemetrySnapshot:
    """A consistent point-in-time view of a running (or finished) crawl.

    ``total`` counts every visit of the run, including visits restored
    from a checkpoint: ``completed + resumed`` reaches ``total`` when the
    run is :attr:`done`, and :attr:`queue_depth` is what is still to
    crawl.
    """

    total: int
    completed: int
    resumed: int
    succeeded: int
    failed: int
    retries: int
    queue_depth: int
    elapsed_seconds: float
    simulated_seconds: float
    failure_counts: dict[str, int]
    visits_by_worker: dict[str, int]
    #: Execution backend of the run ("serial"/"thread"/"process"), empty
    #: when the pool did not report one.
    backend: str = ""
    #: Guard interventions by kind (truncations, watchdog conversions,
    #: breaker rejections — see :mod:`repro.crawler.guards`); empty when
    #: no guards are configured.
    guard_counts: dict[str, int] = field(default_factory=dict)
    #: Whether the run was interrupted (signal or
    #: :meth:`~repro.crawler.pool.CrawlerPool.request_stop`) before
    #: covering every target.
    interrupted: bool = False
    #: Ranks the supervisor quarantined as ``poison-visit`` (their visits
    #: repeatedly killed or hung worker processes); they count toward
    #: :attr:`done` — the run covered them by *excluding* them — but
    #: never toward :attr:`completed`.
    quarantined_ranks: tuple[int, ...] = ()

    @property
    def sites_per_second(self) -> float:
        """Rolling wall-clock throughput."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.completed / self.elapsed_seconds

    @property
    def simulated_seconds_per_site(self) -> float:
        """Average simulated visit duration — the paper's ~35 s/site."""
        if not self.completed:
            return 0.0
        return self.simulated_seconds / self.completed

    @property
    def quarantined(self) -> int:
        return len(self.quarantined_ranks)

    @property
    def done(self) -> bool:
        """Whether crawled, checkpoint-restored and quarantined visits
        cover the run."""
        return (self.completed + self.resumed + self.quarantined
                >= self.total)

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"visits      {self.completed + self.resumed}/{self.total} "
            f"({self.succeeded} ok, {self.failed} failed, "
            f"{self.resumed} resumed from checkpoint)",
            f"queue depth {self.queue_depth}",
            f"retries     {self.retries}",
            f"throughput  {self.sites_per_second:.1f} sites/s wall clock, "
            f"{self.simulated_seconds_per_site:.1f} simulated s/site",
        ]
        if self.backend:
            lines.append(f"backend     {self.backend}")
        if self.failure_counts:
            failures = ", ".join(
                f"{taxonomy}={count}" for taxonomy, count
                in sorted(self.failure_counts.items()))
            lines.append(f"failures    {failures}")
        if self.guard_counts:
            guards = ", ".join(
                f"{kind}={count}" for kind, count
                in sorted(self.guard_counts.items()))
            lines.append(f"guards      {guards}")
        if self.quarantined_ranks:
            ranks = ", ".join(str(rank)
                              for rank in self.quarantined_ranks)
            lines.append(f"quarantined {self.quarantined} poison-visit "
                         f"rank(s): {ranks}")
        if self.interrupted:
            lines.append("interrupted yes — resume to finish the run")
        if self.visits_by_worker:
            workers = ", ".join(
                f"{worker}={count}" for worker, count
                in sorted(self.visits_by_worker.items()))
            lines.append(f"workers     {workers}")
        return "\n".join(lines)

    def progress_line(self) -> str:
        """One-line form for in-place progress output."""
        line = (f"[{self.completed + self.resumed}/{self.total}] "
                f"{self.succeeded} ok, {self.failed} failed, "
                f"{self.retries} retries, queue {self.queue_depth}, "
                f"{self.sites_per_second:.1f} sites/s")
        if self.backend:
            line += f" ({self.backend})"
        return line


@dataclass(frozen=True)
class ChunkTelemetry:
    """Picklable telemetry delta for one process-backend chunk.

    Workers run their chunk against a worker-local :class:`CrawlTelemetry`
    and ship this summary back instead of per-visit records; the parent
    folds it in with :meth:`CrawlTelemetry.record_chunk`.  Failure and
    guard counts travel as sorted item tuples so the delta hashes/pickles
    deterministically.
    """

    completed: int = 0
    succeeded: int = 0
    retries: int = 0
    simulated_seconds: float = 0.0
    failures: tuple[tuple[str, int], ...] = ()
    guard_counts: tuple[tuple[str, int], ...] = ()

    @classmethod
    def from_snapshot(cls, snapshot: TelemetrySnapshot) -> "ChunkTelemetry":
        return cls(
            completed=snapshot.completed,
            succeeded=snapshot.succeeded,
            retries=snapshot.retries,
            simulated_seconds=snapshot.simulated_seconds,
            failures=tuple(sorted(snapshot.failure_counts.items())),
            guard_counts=tuple(sorted(snapshot.guard_counts.items())),
        )


@dataclass
class CrawlTelemetry:
    """Thread-safe telemetry collector for one pool run.

    Pass an instance to :meth:`CrawlerPool.run(telemetry=...)
    <repro.crawler.pool.CrawlerPool.run>`; workers call
    :meth:`record_visit` as visits complete, and any thread may call
    :meth:`snapshot` concurrently.
    """

    clock: Callable[[], float] = time.monotonic
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)
    _total: int = 0
    _completed: int = 0
    _resumed: int = 0
    _succeeded: int = 0
    _retries: int = 0
    _simulated_seconds: float = 0.0
    _started_at: float | None = None
    _backend: str = ""
    _failures: Counter = field(default_factory=Counter)
    _by_worker: Counter = field(default_factory=Counter)
    _guard_events: Counter = field(default_factory=Counter)
    _interrupted: bool = False
    _quarantined: list[int] = field(default_factory=list)

    def start(self, total: int, *, backend: str = "") -> None:
        """Begin (or restart) a run of ``total`` visits — the full run
        size, counting visits a resume will restore from the checkpoint
        (:class:`~repro.crawler.pool.CrawlerPool` passes crawl targets
        plus resumed visits)."""
        with self._lock:
            self._total = total
            self._backend = backend
            self._completed = 0
            self._resumed = 0
            self._succeeded = 0
            self._retries = 0
            self._simulated_seconds = 0.0
            self._failures.clear()
            self._by_worker.clear()
            self._guard_events.clear()
            self._interrupted = False
            self._quarantined.clear()
            self._started_at = self.clock()

    def record_resumed(self, count: int) -> None:
        """Note visits restored from a checkpoint rather than crawled."""
        with self._lock:
            self._resumed += count
        if _metrics.COUNTING and count:
            _metrics.REGISTRY.counter("crawl.resumed").inc(count)

    def record_visit(self, visit: SiteVisit, *,
                     worker: str | None = None) -> None:
        name = worker if worker is not None \
            else threading.current_thread().name
        with self._lock:
            if self._started_at is None:
                self._started_at = self.clock()
            self._completed += 1
            self._retries += visit.retries
            self._simulated_seconds += visit.duration_seconds
            self._by_worker[name] += 1
            if visit.success:
                self._succeeded += 1
            else:
                self._failures[visit.failure or "unknown"] += 1
        if _metrics.COUNTING:
            registry = _metrics.REGISTRY
            registry.counter("crawl.visits").inc()
            if visit.retries:
                registry.counter("crawl.retries").inc(visit.retries)
            if not visit.success:
                registry.counter("crawl.failures").inc()
            registry.histogram("crawl.simulated_seconds").observe(
                visit.duration_seconds)

    def record_chunk(self, chunk: ChunkTelemetry, *, worker: str) -> None:
        """Fold one process-backend chunk delta in under ``worker``.

        Only the telemetry counters are updated: the worker's metric
        increments (``crawl.visits`` etc.) arrive separately through the
        merged :mod:`repro.obs.metrics` registry snapshot, so touching the
        registry here would double-count them.
        """
        with self._lock:
            if self._started_at is None:
                self._started_at = self.clock()
            self._completed += chunk.completed
            self._succeeded += chunk.succeeded
            self._retries += chunk.retries
            self._simulated_seconds += chunk.simulated_seconds
            self._by_worker[worker] += chunk.completed
            for taxonomy, count in chunk.failures:
                self._failures[taxonomy] += count
            for kind, count in chunk.guard_counts:
                self._guard_events[kind] += count

    def record_interrupted(self) -> None:
        """Note that the run stopped before covering every target."""
        with self._lock:
            self._interrupted = True
        if _metrics.COUNTING:
            _metrics.REGISTRY.counter("crawl.interrupted").inc()

    def record_quarantined(self, rank: int, *, detail: str = "") -> None:
        """Note a rank the supervisor quarantined as ``poison-visit``
        (its visit repeatedly killed or hung worker processes)."""
        with self._lock:
            self._quarantined.append(rank)
        if _metrics.COUNTING:
            _metrics.REGISTRY.counter("crawl.quarantined").inc()

    def record_guard_event(self, kind: str, count: int = 1) -> None:
        """Count guard interventions (:mod:`repro.crawler.guards` kinds).

        The pool forwards per-visit guard events for in-process backends;
        the process backend ships them back inside each chunk's
        :class:`ChunkTelemetry` delta.
        """
        with self._lock:
            self._guard_events[kind] += count

    def snapshot(self) -> TelemetrySnapshot:
        with self._lock:
            elapsed = (self.clock() - self._started_at
                       if self._started_at is not None else 0.0)
            return TelemetrySnapshot(
                total=self._total,
                completed=self._completed,
                resumed=self._resumed,
                succeeded=self._succeeded,
                failed=self._completed - self._succeeded,
                retries=self._retries,
                queue_depth=max(0, self._total - self._completed
                                - self._resumed - len(self._quarantined)),
                elapsed_seconds=elapsed,
                simulated_seconds=self._simulated_seconds,
                failure_counts=dict(self._failures),
                visits_by_worker=dict(self._by_worker),
                backend=self._backend,
                guard_counts=dict(self._guard_events),
                interrupted=self._interrupted,
                quarantined_ranks=tuple(sorted(self._quarantined)),
            )

    def render(self) -> str:
        return self.snapshot().render()
