"""Self-healing supervision for the process crawl backend (DESIGN.md §4k).

The process backend's failure domain is the whole executor: one worker
dying of an OOM kill or segfault breaks the :class:`ProcessPoolExecutor`
and, before this module, the run — every in-flight chunk was lost.  The
supervisor turns those events into bounded, deterministic recovery:

* **Crash recovery.**  Each ``BrokenProcessPool`` costs one *rebuild*
  from a per-run budget (``max_pool_rebuilds``); the warm pool is torn
  down and rebuilt, crashed workers' half-written ``.wchunk-*`` sidecars
  are swept, and lost chunks are resubmitted.  Sites are pure functions
  of ``(seed, rank)``, so a replayed chunk produces byte-identical rows —
  recovery cannot change the dataset.

* **Poison bisection.**  A bare ``BrokenProcessPool`` cannot say *which*
  in-flight chunk killed the worker, so every lost chunk takes a
  *strike*.  A chunk reaching :attr:`SupervisorConfig.suspect_strikes`
  is put on **probation**: the backend drains the pipeline and re-runs
  it alone, making attribution exact — a crash now proves guilt, a clean
  pass exonerates the chunk (strikes cleared; innocent bystanders that
  merely shared a doomed pool never get quarantined).  A guilty
  multi-rank chunk is bisected and its halves probe in isolation, so
  each crash halves the suspect span; a guilty single-rank chunk is
  *quarantined*: recorded in the store's ``quarantine`` table (the PR-5
  corrupt-row mechanism) under the ``poison-visit`` taxonomy, and the
  rest of the run proceeds without it.  Isolating one poison rank out of
  a chunk of *n* costs about ``suspect_strikes + log2(n)`` rebuilds.

* **Hang watchdog.**  Chunk deadlines derive from the adaptive
  scheduler's observed rate (``watchdog_factor ×`` the expected chunk
  duration, floored while no rate is known).  An over-deadline chunk has
  its workers killed — deliberately breaking the pool so the hang joins
  the one crash-recovery path — and is the only chunk that takes a
  strike for it; innocent in-flight chunks requeue strike-free.

* **Merge retry.**  A ``sqlite3.OperationalError`` while folding a chunk
  sidecar into the main store is retried (the sidecar is still on disk);
  a chunk whose merge keeps failing is recrawled through the same strike
  machinery, without spending the rebuild budget (the pool is fine).

The class here is deliberately pure bookkeeping — no executor handles, no
filesystem, injectable clock — so the strike/bisection/budget logic is
unit-testable without spawning a single process.  The backend
(:func:`repro.crawler.backends.crawl_in_processes`) owns the actual pool
teardown, sidecar sweep and resubmission.

When the budget runs out, :class:`PoolCrashError` surfaces with the full
event history, so nine-day runs fail with a story instead of a bare
``BrokenProcessPool``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.obs import metrics as _metrics

#: Quarantine-table reason / telemetry taxonomy for a rank whose visit
#: repeatedly kills or hangs worker processes.  Unlike the Section 4
#: visit-failure taxonomies this never appears on a visit row — the visit
#: never completes — it marks the rank's absence from the dataset.
POISON_VISIT = "poison-visit"


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs for the process-backend crawl supervisor.

    The defaults suit paper-scale crawls; tests and drills shrink the
    watchdog numbers.  ``max_pool_rebuilds`` should leave headroom for
    bisection: isolating a poison rank from a chunk of *n* costs about
    ``suspect_strikes + log2(n)`` rebuilds on top of one per transient
    crash.
    """

    #: Pool rebuilds allowed per run before :class:`PoolCrashError`.
    max_pool_rebuilds: int = 8
    #: Chunk losses before a multi-rank chunk is bisected and before a
    #: single-rank chunk is quarantined as poison.
    suspect_strikes: int = 2
    #: Chunk deadline = ``watchdog_factor`` × the scheduler-expected
    #: chunk duration (observed rate), floored by
    #: ``watchdog_floor_seconds`` — generous so adaptive-rate noise and
    #: cold workers never trip it.
    watchdog_factor: float = 10.0
    #: Deadline floor, and the whole deadline while no rate is measured.
    watchdog_floor_seconds: float = 30.0
    #: How often the dispatch loop wakes to check deadlines.  ``0``
    #: disables the watchdog (crash recovery still works).
    watchdog_poll_seconds: float = 0.25
    #: Attempts per chunk-sidecar merge (>= 1; 1 disables the retry).
    merge_attempts: int = 2

    def __post_init__(self) -> None:
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")
        if self.suspect_strikes < 1:
            raise ValueError("suspect_strikes must be >= 1")
        if self.watchdog_factor <= 0:
            raise ValueError("watchdog_factor must be > 0")
        if self.watchdog_floor_seconds <= 0:
            raise ValueError("watchdog_floor_seconds must be > 0")
        if self.watchdog_poll_seconds < 0:
            raise ValueError("watchdog_poll_seconds must be >= 0")
        if self.merge_attempts < 1:
            raise ValueError("merge_attempts must be >= 1")

    @property
    def watchdog_enabled(self) -> bool:
        return self.watchdog_poll_seconds > 0


class PoolCrashError(RuntimeError):
    """The crash budget ran out; carries the supervisor's telemetry.

    Raised by :meth:`ChunkSupervisor.on_pool_crash` when one more rebuild
    would exceed ``max_pool_rebuilds``.  The run's checkpoint store holds
    every chunk merged before the final crash, so ``resume=True``
    completes it (injected once-only faults do not refire).
    """

    def __init__(self, *, rebuilds: int, max_pool_rebuilds: int,
                 lost_ranks: Sequence[int],
                 quarantined_ranks: Sequence[int],
                 events: Sequence[dict]) -> None:
        self.rebuilds = rebuilds
        self.max_pool_rebuilds = max_pool_rebuilds
        self.lost_ranks = tuple(lost_ranks)
        self.quarantined_ranks = tuple(quarantined_ranks)
        self.events = tuple(events)
        lost = ", ".join(str(rank) for rank in self.lost_ranks[:8])
        if len(self.lost_ranks) > 8:
            lost += ", ..."
        super().__init__(
            f"crawl worker pool crashed {rebuilds} time(s), exceeding the "
            f"rebuild budget of {max_pool_rebuilds}; {len(self.lost_ranks)} "
            f"rank(s) in flight ({lost}) — the checkpoint store holds all "
            f"merged chunks, rerun with resume=True")


@dataclass(frozen=True)
class RecoveryPlan:
    """What the backend must do after a pool crash (or merge failure)."""

    #: Rank tuples to resubmit, in order (bisected halves stay contiguous).
    requeue: tuple[tuple[int, ...], ...]
    #: ``(rank, detail)`` pairs to quarantine as ``poison-visit``.
    quarantine: tuple[tuple[int, str], ...]
    #: Rank tuples to re-run *in isolation* (pipeline drained, one at a
    #: time) so the next crash or clean pass attributes guilt exactly.
    probation: tuple[tuple[int, ...], ...] = ()


class ChunkSupervisor:
    """Pure strike/bisection/budget bookkeeping for one run.

    The backend reports chunk lifecycle events (`note_submitted`,
    `note_finished`) and failures (`on_pool_crash`, `on_merge_failure`);
    the supervisor answers with a :class:`RecoveryPlan` and keeps the
    counters that become ``pool.last_supervisor_stats`` and the
    ``supervisor.*`` metrics.

    Strikes are keyed by the chunk's rank tuple, not its submission
    index, so a resubmitted chunk keeps its record across attempts.
    Everything is deterministic given the event sequence — the clock only
    feeds watchdog deadlines, never the recovery decisions.
    """

    def __init__(self, config: SupervisorConfig, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config
        self._clock = clock
        self._strikes: dict[tuple[int, ...], int] = {}
        self._submitted_at: dict[int, float] = {}
        self.rebuilds = 0
        self.requeued_chunks = 0
        self.requeued_ranks = 0
        self.bisections = 0
        self.exonerations = 0
        self.watchdog_hangs = 0
        self.merge_retries = 0
        self.quarantined: list[tuple[int, str]] = []
        self.events: list[dict] = []

    # -- chunk lifecycle ----------------------------------------------------

    def note_submitted(self, chunk_index: int) -> None:
        self._submitted_at[chunk_index] = self._clock()

    def note_finished(self, chunk_index: int) -> None:
        self._submitted_at.pop(chunk_index, None)

    def note_merge_retry(self) -> None:
        self.merge_retries += 1
        if _metrics.COUNTING:
            _metrics.REGISTRY.counter("supervisor.merge_retries").inc()

    # -- watchdog -----------------------------------------------------------

    def deadline_seconds(self, size: int,
                         observed_rate: "float | None") -> float:
        """The hang deadline for a chunk of ``size`` ranks."""
        floor = self.config.watchdog_floor_seconds
        if not observed_rate or observed_rate <= 0:
            return floor
        return max(floor, self.config.watchdog_factor * size / observed_rate)

    def overdue(self, chunks: "dict[int, int]",
                observed_rate: "float | None") -> list[int]:
        """Indices of in-flight chunks past their deadline.

        ``chunks`` maps chunk index → rank count for everything currently
        submitted; indices the supervisor never saw submit are ignored.
        """
        if not self.config.watchdog_enabled:
            return []
        now = self._clock()
        late = []
        for index, size in chunks.items():
            started = self._submitted_at.get(index)
            if started is None:
                continue
            if now - started > self.deadline_seconds(size, observed_rate):
                late.append(index)
        return sorted(late)

    # -- failure handling ---------------------------------------------------

    def on_pool_crash(self, lost: "Sequence[tuple[int, ...]]", *,
                      cause: str,
                      suspects: "Sequence[tuple[int, ...]] | None" = None,
                      certain: bool = False) -> RecoveryPlan:
        """One pool crash: spend a rebuild, plan requeues and quarantines.

        ``lost`` is every chunk (as its rank tuple) that was in flight;
        ``suspects`` limits which of them take a strike (the watchdog
        knows exactly which chunk hung — a bare ``BrokenProcessPool``
        cannot attribute, so all lost chunks are suspect).  With
        ``certain=True`` the crash happened while a probation chunk ran
        alone, which *proves* its guilt: a multi-rank chunk bisects into
        probation halves, a single rank is quarantined on the spot.
        Raises :class:`PoolCrashError` when the budget is spent.
        """
        self.rebuilds += 1
        if cause == "hang":
            self.watchdog_hangs += 1
        if _metrics.COUNTING:
            _metrics.REGISTRY.counter("supervisor.pool_rebuilds").inc()
            if cause == "hang":
                _metrics.REGISTRY.counter("supervisor.watchdog_hangs").inc()
        if self.rebuilds > self.config.max_pool_rebuilds:
            raise PoolCrashError(
                rebuilds=self.rebuilds,
                max_pool_rebuilds=self.config.max_pool_rebuilds,
                lost_ranks=sorted(rank for ranks in lost for rank in ranks),
                quarantined_ranks=[rank for rank, _ in self.quarantined],
                events=self.events + [{
                    "event": "budget-exhausted", "cause": cause,
                    "chunks_lost": len(lost)}])
        suspect_set = (set(lost) if suspects is None
                       else {tuple(ranks) for ranks in suspects})
        plan = self._plan(lost, cause=cause, suspect_set=suspect_set,
                          certain=certain)
        self.events.append({
            "event": "pool-rebuild", "cause": cause, "rebuild": self.rebuilds,
            "chunks_lost": len(lost),
            "ranks_requeued": sum(len(ranks) for ranks in plan.requeue),
            "probation": [list(ranks) for ranks in plan.probation],
            "quarantined": [rank for rank, _ in plan.quarantine]})
        return plan

    def on_merge_failure(self, ranks: "tuple[int, ...]", *,
                         detail: str) -> RecoveryPlan:
        """A chunk sidecar merge failed past its retries: recrawl the
        chunk through the strike machinery.  No rebuild is spent — the
        worker pool is healthy."""
        plan = self._plan([ranks], cause="merge-failure",
                          suspect_set={tuple(ranks)})
        self.events.append({
            "event": "merge-failure", "detail": detail,
            "ranks_requeued": sum(len(r) for r in plan.requeue),
            "probation": [list(r) for r in plan.probation],
            "quarantined": [rank for rank, _ in plan.quarantine]})
        return plan

    def exonerate(self, ranks: "tuple[int, ...]") -> None:
        """A probation chunk completed cleanly in isolation: it was an
        innocent bystander of some other chunk's crash — clear its
        record."""
        ranks = tuple(ranks)
        if self._strikes.pop(ranks, None) is not None:
            self.exonerations += 1
            self.events.append({"event": "exonerated",
                                "ranks": list(ranks)})
            if _metrics.COUNTING:
                _metrics.REGISTRY.counter("supervisor.exonerated").inc()

    def _plan(self, lost: "Sequence[tuple[int, ...]]", *, cause: str,
              suspect_set: "set[tuple[int, ...]]",
              certain: bool = False) -> RecoveryPlan:
        requeue: list[tuple[int, ...]] = []
        quarantine: list[tuple[int, str]] = []
        probation: list[tuple[int, ...]] = []
        for ranks in lost:
            ranks = tuple(ranks)
            if ranks in suspect_set:
                strikes = self._strikes.pop(ranks, 0) + 1
            else:
                strikes = self._strikes.get(ranks, 0)
            guilty = certain and ranks in suspect_set
            if guilty and len(ranks) > 1:
                # Proven guilty in isolation: bisect, and probe each half
                # in isolation too, halving the suspect span per crash.
                mid = len(ranks) // 2
                self.bisections += 1
                if _metrics.COUNTING:
                    _metrics.REGISTRY.counter("supervisor.bisections").inc()
                for half in (ranks[:mid], ranks[mid:]):
                    self._strikes[half] = strikes
                    probation.append(half)
            elif guilty:
                detail = (f"worker {cause} in isolation "
                          f"({strikes} strike(s)) at rank {ranks[0]}")
                quarantine.append((ranks[0], detail))
                self.quarantined.append((ranks[0], detail))
                if _metrics.COUNTING:
                    _metrics.REGISTRY.counter(
                        "supervisor.poison_quarantined").inc()
            elif (ranks in suspect_set
                    and strikes >= self.config.suspect_strikes):
                # Suspicion threshold reached, but guilt unproven (other
                # chunks shared the doomed pool): probe in isolation
                # rather than punish a possible bystander.
                self._strikes[ranks] = strikes
                probation.append(ranks)
            else:
                if ranks in suspect_set:
                    self._strikes[ranks] = strikes
                requeue.append(ranks)
        self.requeued_chunks += len(requeue) + len(probation)
        self.requeued_ranks += (sum(len(ranks) for ranks in requeue)
                                + sum(len(ranks) for ranks in probation))
        if _metrics.COUNTING and (requeue or probation):
            _metrics.REGISTRY.counter("supervisor.requeued_ranks").inc(
                sum(len(ranks) for ranks in requeue)
                + sum(len(ranks) for ranks in probation))
        return RecoveryPlan(requeue=tuple(requeue),
                            quarantine=tuple(quarantine),
                            probation=tuple(probation))

    # -- reporting ----------------------------------------------------------

    def stats(self) -> dict:
        """The run's supervision summary (``pool.last_supervisor_stats``)."""
        return {
            "rebuilds": self.rebuilds,
            "max_pool_rebuilds": self.config.max_pool_rebuilds,
            "requeued_chunks": self.requeued_chunks,
            "requeued_ranks": self.requeued_ranks,
            "bisections": self.bisections,
            "exonerations": self.exonerations,
            "watchdog_hangs": self.watchdog_hangs,
            "merge_retries": self.merge_retries,
            "quarantined_ranks": sorted(
                rank for rank, _ in self.quarantined),
            "events": list(self.events),
        }
