"""Interactive crawling (the Appendix A.3 experiments).

The paper's main crawl never interacts with pages; a manual follow-up study
re-visits sites while a researcher clicks through them, navigates multiple
paths of the same origin and sometimes creates accounts — and compares the
permissions *activated* with interaction against those the automated static
and dynamic analyses reported without it (Table 12).

:class:`InteractiveCrawler` reproduces that second run: it crawls with
interaction enabled and a configurable set of unlocked interaction gates.
A crawl that clicks and navigates unlocks ``click`` and ``navigation``
gates; ``login`` and ``subscription`` gates stay shut unless granted
(mirroring "some accounts could not be created, and some functionality
remained inaccessible").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.browser.page import Fetcher
from repro.crawler.crawler import CrawlConfig, Crawler
from repro.crawler.records import SiteVisit


@dataclass
class InteractionConfig:
    """What the simulated researcher manages to unlock."""

    click: bool = True
    navigation: bool = True
    login: bool = False
    subscription: bool = False

    def unlocked_gates(self) -> frozenset[str]:
        gates = set()
        if self.click:
            gates.add("click")
        if self.navigation:
            gates.add("navigation")
        if self.login:
            gates.add("login")
        if self.subscription:
            gates.add("subscription")
        return frozenset(gates)


class InteractiveCrawler:
    """A crawler that interacts with pages while the tool keeps recording."""

    def __init__(self, fetcher: Fetcher, *,
                 interaction: InteractionConfig | None = None,
                 base_config: CrawlConfig | None = None) -> None:
        self.interaction = (interaction if interaction is not None
                            else InteractionConfig())
        base = base_config if base_config is not None else CrawlConfig()
        config = CrawlConfig(
            load_timeout_seconds=base.load_timeout_seconds,
            settle_seconds=base.settle_seconds,
            hard_timeout_seconds=base.hard_timeout_seconds,
            scroll_to_lazy_iframes=base.scroll_to_lazy_iframes,
            max_depth=base.max_depth,
            execute_scripts=base.execute_scripts,
            interact=True,
            unlocked_gates=self.interaction.unlocked_gates(),
        )
        self._crawler = Crawler(fetcher, config=config)

    def visit(self, url: str, *, rank: int = -1) -> SiteVisit:
        return self._crawler.visit(url, rank=rank)


@dataclass
class InteractionComparison:
    """Per-site comparison between the automated and interactive runs."""

    rank: int
    static_permissions: frozenset[str]
    dynamic_permissions: frozenset[str]
    activated_permissions: frozenset[str]

    @property
    def activated_covered_by_static(self) -> frozenset[str]:
        return self.activated_permissions & self.static_permissions

    @property
    def activated_covered_by_union(self) -> frozenset[str]:
        return self.activated_permissions & (
            self.static_permissions | self.dynamic_permissions)
