"""Single-site crawl protocol.

Section 3.2 of the paper: up to 60 s for the load event, 20 s settling
without interaction, scrolling only to trigger lazy-loaded iframes, a 90 s
hard timeout per visit, one visit per site.  :class:`Crawler` mirrors that
protocol over the simulated browser — wall-clock waits become a simulated
duration model so the pool can report the paper's ~35 s/site average
without actually sleeping.
"""

from __future__ import annotations

import random
import traceback
from dataclasses import dataclass

from repro.browser.page import Fetcher, PageLoadConfig, PageLoader
from repro.crawler.errors import (
    CrawlError,
    FinalUpdateTimeoutError,
    MinorCrawlerError,
)
from repro.crawler.guards import (
    GUARD_FRAMES_CAPPED,
    GUARD_WATCHDOG,
    GuardedFetcher,
    GuardEvent,
    ResourceGuards,
)
from repro.crawler.records import SiteVisit, failed_visit, visit_from_page
from repro.crawler.resilience import RetryPolicy
from repro.obs import metrics as _metrics
from repro.policy.engine import PermissionsPolicyEngine


@dataclass
class CrawlConfig:
    """Crawl options mirroring the paper's measurement instantiation."""

    load_timeout_seconds: float = 60.0
    settle_seconds: float = 20.0
    hard_timeout_seconds: float = 90.0
    scroll_to_lazy_iframes: bool = True
    max_depth: int = 4
    execute_scripts: bool = True
    interact: bool = False
    unlocked_gates: frozenset[str] = frozenset({"click"})
    #: Disable navigator.webdriver to reduce bot detection (C6/C8); kept as
    #: a flag for completeness — the synthetic web serves identical content
    #: either way, modelling the best case the paper aims for.
    disable_automation_controlled: bool = True
    #: Hostile-input hardening (DESIGN.md §4g): input caps, per-visit
    #: watchdog and per-origin circuit breaker.  ``None`` (the default)
    #: disables all guards, keeping default crawls byte-identical with
    #: earlier releases.
    guards: ResourceGuards | None = None

    def page_load_config(self) -> PageLoadConfig:
        return PageLoadConfig(
            max_depth=self.max_depth,
            scroll_to_lazy_iframes=self.scroll_to_lazy_iframes,
            execute_scripts=self.execute_scripts,
            interact=self.interact,
            unlocked_gates=self.unlocked_gates,
        )


class Crawler:
    """Visits one site at a time and produces :class:`SiteVisit` records."""

    def __init__(self, fetcher: Fetcher, *,
                 config: CrawlConfig | None = None,
                 engine: PermissionsPolicyEngine | None = None,
                 retry_policy: RetryPolicy | None = None) -> None:
        self.config = config if config is not None else CrawlConfig()
        self.retry_policy = retry_policy
        #: Guard interventions during this crawler's visits (truncations,
        #: watchdog conversions, breaker rejections); the pool forwards
        #: them to telemetry after each visit.
        self.guard_events: list[GuardEvent] = []
        self._guarded: GuardedFetcher | None = None
        guards = self.config.guards
        if guards is not None and guards.caps_fetches:
            self._guarded = GuardedFetcher(fetcher, guards,
                                           events=self.guard_events)
            fetcher = self._guarded
        self._loader = PageLoader(
            fetcher,
            engine=engine,
            config=self.config.page_load_config(),
        )

    @property
    def engine(self) -> PermissionsPolicyEngine:
        return self._loader.engine

    def visit(self, url: str, *, rank: int = -1) -> SiteVisit:
        """Visit one site; never raises — failures become failed visits.

        With a :class:`RetryPolicy`, transient failures are re-attempted up
        to the policy's bound; earlier attempts' durations and the backoff
        waits accumulate into the final record's ``duration_seconds`` and
        the retry count lands in ``retries``.
        """
        policy = self.retry_policy
        spent_seconds = 0.0
        retries = 0
        while True:
            visit = self._attempt(url, rank)
            if (visit.success or policy is None
                    or not policy.should_retry(visit.failure, retries)):
                visit.retries = retries
                visit.duration_seconds += spent_seconds
                return visit
            spent_seconds += (visit.duration_seconds
                              + policy.backoff_seconds(retries))
            retries += 1

    def _attempt(self, url: str, rank: int) -> SiteVisit:
        """One visit attempt.  Typed crawl failures map to their taxonomy
        class; anything else — a crawler bug, an automation-library hiccup —
        becomes the paper's ``minor-crawler-error`` with the traceback
        preserved, instead of escaping and killing the whole pool."""
        try:
            page = self._loader.load(url)
        except CrawlError as exc:
            return failed_visit(
                rank, url, exc.taxonomy,
                duration_seconds=self._failure_duration(exc.taxonomy))
        except Exception:
            return failed_visit(
                rank, url, MinorCrawlerError.taxonomy,
                duration_seconds=self._failure_duration(
                    MinorCrawlerError.taxonomy),
                error_detail=traceback.format_exc())
        duration = self._visit_duration(url, frame_count=len(page.frames))
        visit = visit_from_page(rank, url, page, duration_seconds=duration)
        guards = self.config.guards
        if guards is not None:
            visit = self._apply_visit_guards(url, visit, guards)
        return visit

    def _apply_visit_guards(self, url: str, visit: SiteVisit,
                            guards: ResourceGuards) -> SiteVisit:
        """Post-visit guards: frame cap, then the watchdog deadline.

        Both are pure functions of the visit record, so guarded crawls
        stay deterministic across backends and resume boundaries.
        """
        cap = guards.max_frames_per_visit
        if cap is not None and len(visit.frames) > cap:
            dropped = len(visit.frames) - cap
            keep = {frame.frame_id for frame in visit.frames[:cap]}
            visit.frames[:] = visit.frames[:cap]
            visit.calls[:] = [c for c in visit.calls if c.frame_id in keep]
            visit.scripts[:] = [s for s in visit.scripts
                                if s.frame_id in keep]
            visit.prompts[:] = [p for p in visit.prompts
                                if p.requesting_frame_id in keep]
            self.guard_events.append(GuardEvent(
                GUARD_FRAMES_CAPPED, url,
                f"dropped {dropped} frames beyond cap {cap}"))
            if _metrics.COUNTING:
                _metrics.REGISTRY.counter("guard.truncations").inc()
        deadline = guards.watchdog_deadline_seconds
        if deadline is not None and visit.duration_seconds > deadline:
            self.guard_events.append(GuardEvent(
                GUARD_WATCHDOG, url,
                f"simulated visit {visit.duration_seconds:.1f}s exceeded "
                f"deadline {deadline:.1f}s"))
            if _metrics.COUNTING:
                _metrics.REGISTRY.counter("guard.watchdog").inc()
            return failed_visit(
                visit.rank, url, FinalUpdateTimeoutError.taxonomy,
                duration_seconds=deadline,
                error_detail=f"watchdog: simulated visit took "
                             f"{visit.duration_seconds:.1f}s, deadline "
                             f"{deadline:.1f}s")
        return visit

    # -- simulated timing ---------------------------------------------------------

    def _visit_duration(self, url: str, frame_count: int) -> float:
        """Simulated seconds for a successful visit: load + settle + a per-
        frame collection cost, jittered deterministically per URL.  The
        constants land near the paper's 35 s/site average."""
        rng = random.Random(f"duration:{url}")
        load = min(self.config.load_timeout_seconds,
                   rng.uniform(1.0, 18.0))
        collection = 0.8 * frame_count
        return load + self.config.settle_seconds * 0.6 + collection \
            + rng.uniform(0.0, 4.0)

    def _failure_duration(self, taxonomy: str) -> float:
        if taxonomy == "load-timeout":
            return self.config.load_timeout_seconds
        if taxonomy in ("final-update-timeout", "excluded-incomplete"):
            return self.config.hard_timeout_seconds
        return 2.0
