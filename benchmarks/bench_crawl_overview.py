"""Benchmark: regenerate the Section 4 crawl overview (success/failure taxonomy) from the measurement crawl."""

from repro.experiments.tables import crawl_overview as experiment


def test_crawl_overview(benchmark, ctx, record_result):
    result = benchmark.pedantic(experiment, args=(ctx,),
                                rounds=2, iterations=1)
    record_result(result)
    assert result.shape_ok, result.rendered
