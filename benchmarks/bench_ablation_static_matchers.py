"""Ablation: plain string matching vs token-aware static matching.

The paper's static analysis is deliberate substring search (Section 3.1.1)
and therefore misses obfuscated code (Section 4.1.3).  This ablation
quantifies the design choice on the crawl's script corpus:

* the paper matcher (``static_matches``),
* a token-aware matcher that requires the API identifier to appear as a
  full dotted token (fewer false positives on substrings),
* measured both on plain and on obfuscated script sources.

Expected shape: both matchers agree on plain sources, both go blind on
obfuscated sources (only the dynamic analysis recovers those), and the
token matcher is strictly no more permissive.
"""

import re

from repro.analysis.usage import static_matches
from repro.registry.features import DEFAULT_REGISTRY

_TOKEN_PATTERNS = {
    perm.name: [re.compile(r"(?<![\w$])" + re.escape(pattern) + r"(?![\w$])")
                for pattern in perm.api_patterns]
    for perm in DEFAULT_REGISTRY.instrumented()
}


def token_aware_matches(source: str) -> frozenset[str]:
    """The alternative matcher: identifier-boundary regex matching."""
    found = set()
    for name, patterns in _TOKEN_PATTERNS.items():
        if any(pattern.search(source) for pattern in patterns):
            found.add(name)
    return frozenset(found)


def _script_corpus(ctx, limit=4000):
    corpus = []
    for visit in ctx.dataset.successful():
        for script in visit.scripts:
            corpus.append(script.source)
            if len(corpus) >= limit:
                return corpus
    return corpus


def test_ablation_static_matchers(benchmark, ctx):
    corpus = _script_corpus(ctx)
    assert corpus

    def run_paper_matcher():
        hits = 0
        for source in corpus:
            permissions, _ = static_matches(source, DEFAULT_REGISTRY)
            hits += len(permissions)
        return hits

    paper_hits = benchmark(run_paper_matcher)
    token_hits = sum(len(token_aware_matches(source)) for source in corpus)

    # The token matcher must be at most as permissive; on this corpus the
    # two should agree closely because generated sources use full names.
    assert token_hits <= paper_hits
    assert token_hits >= paper_hits * 0.6

    # Obfuscated sources defeat BOTH static approaches — the blind spot the
    # dynamic instrumentation exists to cover.
    obfuscated = [source for source in corpus if source.startswith("_0x")]
    assert obfuscated, "corpus should contain obfuscated scripts"
    for source in obfuscated[:50]:
        permissions, _ = static_matches(source, DEFAULT_REGISTRY)
        assert not permissions
        assert not token_aware_matches(source)
