"""Benchmark: regenerate the paper's Table 4 (top invoked permissions) from the measurement crawl."""

from repro.experiments.tables import table04_invocations as experiment


def test_table04_invocations(benchmark, ctx, record_result):
    result = benchmark.pedantic(experiment, args=(ctx,),
                                rounds=2, iterations=1)
    record_result(result)
    assert result.shape_ok, result.rendered
