"""Benchmark: the crawl pipeline's wall-clock profile across backends.

Unlike the table/figure benches, this one times the *machinery*: site
generation, the crawl under each backend, analysis, and the persistent
measurement cache — and writes ``BENCH_crawl.json`` at the repository root
so the perf trajectory is tracked in-repo (CI uploads it as an artifact).

Scale comes from ``REPRO_PERF_SITES`` (default 2,000; CI smoke uses 500).
Enforcement: the process backend must not be slower than serial on
multi-core hosts, and must beat serial by >= 2x on a >= 4-core runner at
>= 10k sites (the warm-worker-pool claim); gates the runner cannot
evaluate are recorded under ``gates_skipped`` with the reason.  The
observability layer must stay under 2 % estimated overhead when disabled
and must not change the dataset when enabled (DESIGN.md §4f).  The
process backend's realised adaptive chunk schedule is written to
``BENCH_chunk_schedule.json`` (CI uploads it as an artifact).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.perf import collect, write_report

REPORT_PATH = Path(__file__).parent.parent / "BENCH_crawl.json"
SCHEDULE_PATH = Path(__file__).parent.parent / "BENCH_chunk_schedule.json"
PERF_SITES = int(os.environ.get("REPRO_PERF_SITES",
                                os.environ.get("REPRO_SITES", "2000")))


def test_perf_crawl_report(benchmark):
    report = benchmark.pedantic(collect, args=(PERF_SITES,),
                                kwargs={"workers": 4},
                                rounds=1, iterations=1)
    write_report(report, REPORT_PATH)

    crawl = report["crawl"]
    assert set(crawl) == {"serial", "thread", "process"}
    for timing in crawl.values():
        assert timing["seconds"] > 0

    cache = report["cache"]
    assert cache["warm_seconds"] < cache["cold_seconds"], \
        "warm cache load must beat a cold crawl"
    assert cache["warm_over_cold"] < 0.10, \
        f"warm cache hit took {cache['warm_over_cold']:.1%} of cold"

    # The process backend's autotuned chunk schedule is recorded and
    # non-empty; write it out as the CI artifact.
    schedule = crawl["process"]["chunk_schedule"]
    assert schedule["sizes"], "process backend recorded no chunk schedule"
    assert sum(schedule["sizes"]) == PERF_SITES
    SCHEDULE_PATH.write_text(json.dumps({
        "site_count": PERF_SITES,
        "schedule": schedule,
        "run_stats": crawl["process"]["run_stats"],
    }, indent=2) + "\n")

    # Backend-speedup gates: enforced when the runner can evaluate them,
    # otherwise recorded as skipped (never silently dropped).
    gates = report["gates"]
    assert "gates_skipped" in report
    skipped = {entry["gate"] for entry in report["gates_skipped"]}
    for gate in ("process_not_slower_than_serial", "process_2x_serial"):
        if gate in gates:
            assert gates[gate], (
                f"{gate} gate failed: process "
                f"{crawl['process']['seconds']}s vs serial "
                f"{crawl['serial']['seconds']}s on a "
                f"{os.cpu_count()}-core host")
        else:
            assert gate in skipped, (
                f"{gate} neither evaluated nor recorded as skipped")

    # Observability gates: disabled instrumentation must cost < 2 % of the
    # crawl (estimated from recorded hook counts × micro-timed per-hook
    # disabled cost), and enabling it must not change the dataset.
    obs = report["observability"]
    assert obs["datasets_identical"], \
        "enabling tracing/metrics changed the crawl dataset"
    assert obs["span_count"] > 0 and obs["metric_increments"] > 0, \
        "instrumented run recorded no spans/metrics"
    assert obs["disabled_overhead_estimate"] < 0.02, (
        f"disabled observability overhead estimated at "
        f"{obs['disabled_overhead_estimate']:.2%} of the crawl (gate: 2%)")
    # Both arms run best-of-N from cleared caches, so a warm-cache
    # asymmetry can no longer report enabling instrumentation as a large
    # speedup (the old single-pass A/B measured -18.7 %); anything beyond
    # scheduler noise in the negative direction is a measurement bug.
    assert obs["rounds"] >= 2
    assert obs["enabled_overhead"] > -0.02, (
        f"enabled observability measured {obs['enabled_overhead']:.2%} — "
        "a negative overhead means the off/on arms were not warmed "
        "symmetrically")

    # The embedded stage breakdown must cover the whole pipeline.
    stage_names = {stage["name"] for stage in report["stages"]["stages"]}
    assert {"generate", "crawl", "store", "index"} <= stage_names
    assert any(name.startswith("analysis.") for name in stage_names)
