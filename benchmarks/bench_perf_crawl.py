"""Benchmark: the crawl pipeline's wall-clock profile across backends.

Unlike the table/figure benches, this one times the *machinery*: site
generation, the crawl under each backend, analysis, and the persistent
measurement cache — and writes ``BENCH_crawl.json`` at the repository root
so the perf trajectory is tracked in-repo (CI uploads it as an artifact).

Scale comes from ``REPRO_PERF_SITES`` (default 2,000; CI smoke uses 500).
Enforcement: the process backend must not be slower than serial — but only
on multi-core hosts, since on a single core the process backend pays fork
and pickling overhead with nothing to parallelise against.  The
observability layer must stay under 2 % estimated overhead when disabled
and must not change the dataset when enabled (DESIGN.md §4f).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.experiments.perf import collect, write_report

REPORT_PATH = Path(__file__).parent.parent / "BENCH_crawl.json"
PERF_SITES = int(os.environ.get("REPRO_PERF_SITES",
                                os.environ.get("REPRO_SITES", "2000")))


def test_perf_crawl_report(benchmark):
    report = benchmark.pedantic(collect, args=(PERF_SITES,),
                                kwargs={"workers": 4},
                                rounds=1, iterations=1)
    write_report(report, REPORT_PATH)

    crawl = report["crawl"]
    assert set(crawl) == {"serial", "thread", "process"}
    for timing in crawl.values():
        assert timing["seconds"] > 0

    cache = report["cache"]
    assert cache["warm_seconds"] < cache["cold_seconds"], \
        "warm cache load must beat a cold crawl"
    assert cache["warm_over_cold"] < 0.10, \
        f"warm cache hit took {cache['warm_over_cold']:.1%} of cold"

    if (os.cpu_count() or 1) >= 2:
        assert crawl["process"]["seconds"] <= crawl["serial"]["seconds"], (
            f"process backend ({crawl['process']['seconds']}s) slower than "
            f"serial ({crawl['serial']['seconds']}s) on a "
            f"{os.cpu_count()}-core host")

    # Observability gates: disabled instrumentation must cost < 2 % of the
    # crawl (estimated from recorded hook counts × micro-timed per-hook
    # disabled cost), and enabling it must not change the dataset.
    obs = report["observability"]
    assert obs["datasets_identical"], \
        "enabling tracing/metrics changed the crawl dataset"
    assert obs["span_count"] > 0 and obs["metric_increments"] > 0, \
        "instrumented run recorded no spans/metrics"
    assert obs["disabled_overhead_estimate"] < 0.02, (
        f"disabled observability overhead estimated at "
        f"{obs['disabled_overhead_estimate']:.2%} of the crawl (gate: 2%)")

    # The embedded stage breakdown must cover the whole pipeline.
    stage_names = {stage["name"] for stage in report["stages"]["stages"]}
    assert {"generate", "crawl", "store", "index"} <= stage_names
    assert any(name.startswith("analysis.") for name in stage_names)
