"""Benchmark: regenerate the paper's Figure 2 (header adoption) from the measurement crawl."""

from repro.experiments.tables import fig02_header_adoption as experiment


def test_fig02_header_adoption(benchmark, ctx, record_result):
    result = benchmark.pedantic(experiment, args=(ctx,),
                                rounds=2, iterations=1)
    record_result(result)
    assert result.shape_ok, result.rendered
