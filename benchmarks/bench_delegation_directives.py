"""Benchmark: regenerate the Section 4.2.2 delegation-directive distribution from the measurement crawl."""

from repro.experiments.tables import delegation_directives as experiment


def test_delegation_directives(benchmark, ctx, record_result):
    result = benchmark.pedantic(experiment, args=(ctx,),
                                rounds=2, iterations=1)
    record_result(result)
    assert result.shape_ok, result.rendered
