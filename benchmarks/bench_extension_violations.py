"""Extension bench: policy violations (blocked calls) across the crawl.

Denied invocations are recorded like successful ones (the wrapper sees
every call); this bench classifies them: self-inflicted breakage — a
site's own copy-pasted disable template blocking its own functionality —
versus embedded documents calling APIs nobody delegated to them.
"""

from repro.analysis.violations import ViolationAnalysis


def test_extension_violations(benchmark, ctx):
    visits = ctx.dataset.successful()
    analysis = benchmark.pedantic(ViolationAnalysis, args=(visits,),
                                  rounds=1, iterations=1)
    report = analysis.report

    # Blocked calls exist (undelegated embedded frames, disable templates).
    assert report.sites_with_blocked_calls > 0
    assert report.blocked_permissions

    # Blocked-call sites are a small minority — the ecosystem mostly runs
    # on default allowlists that permit what actually executes.
    blocked_share = (report.sites_with_blocked_calls
                     / max(1, len(visits)))
    assert blocked_share < 0.25

    # Self-inflicted breakage is rarer still, but present: the disable
    # templates do occasionally bite their deployers.
    assert report.sites_with_self_inflicted <= report.sites_with_blocked_calls
