"""Benchmark: regenerate the paper's Table 8 (top delegated permissions) from the measurement crawl."""

from repro.experiments.tables import table08_delegated_permissions as experiment


def test_table08_delegated_permissions(benchmark, ctx, record_result):
    result = benchmark.pedantic(experiment, args=(ctx,),
                                rounds=2, iterations=1)
    record_result(result)
    assert result.shape_ok, result.rendered
