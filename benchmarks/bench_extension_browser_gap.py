"""Extension bench: the cross-browser enforcement gap (paper Section 2.2.6).

Only Chromium-based browsers enforce the ``Permissions-Policy`` header;
Firefox and Safari honour the ``allow`` attribute but keep default
allowlists regardless of deployed headers.  This bench re-evaluates the
crawl's header-deploying sites under each browser profile and quantifies
the gap: features a site's header turns off for Chromium visitors that
remain available to Firefox/Safari visitors.
"""

from repro.analysis.chains import rebuild_policy_frames
from repro.policy.browser_profiles import CrossBrowserDivergence
from repro.policy.header import HeaderParseError, parse_permissions_policy_header

SAMPLE = 250


def measure_gap(visits):
    divergence = CrossBrowserDivergence()
    sites_with_valid_header = 0
    sites_with_gap = 0
    gap_features = {}
    for visit in visits:
        top = visit.top_frame
        raw = top.header("permissions-policy")
        if raw is None:
            continue
        try:
            parse_permissions_policy_header(raw)
        except HeaderParseError:
            continue
        sites_with_valid_header += 1
        frames = rebuild_policy_frames(visit)
        gaps = divergence.enforcement_gaps(frames[top.frame_id])
        if gaps:
            sites_with_gap += 1
            for gap in gaps:
                gap_features[gap.feature] = gap_features.get(gap.feature,
                                                             0) + 1
        if sites_with_valid_header >= SAMPLE:
            break
    return sites_with_valid_header, sites_with_gap, gap_features


def test_extension_browser_enforcement_gap(benchmark, ctx):
    visits = ctx.dataset.successful()
    header_sites, gap_sites, gap_features = benchmark.pedantic(
        measure_gap, args=(visits,), rounds=1, iterations=1)

    assert header_sites > 50
    # Essentially every restrictive header protects only Chromium: the
    # features it disables stay on for the non-enforcing engines wherever
    # they support them at all.
    assert gap_sites / header_sites > 0.8

    # The gap shows for classic powerful permissions that every engine
    # ships (camera/microphone/geolocation) — Chromium-only features like
    # browsing-topics cannot appear (they are unusable elsewhere anyway).
    assert set(gap_features) & {"camera", "microphone", "geolocation"}
    assert "browsing-topics" not in gap_features
