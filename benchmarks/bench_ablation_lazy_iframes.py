"""Ablation: scrolling to lazy-loaded iframes (paper Section 3.2).

The paper's crawler deliberately scrolls to lazy-loaded iframes "to ensure
the embedded document loads and maximize data collection".  This ablation
re-crawls a sample with scrolling disabled and quantifies what the design
choice buys: embedded documents, delegations and embedded invocations that
a scroll-less crawler would simply never see.
"""

from repro.analysis.delegation import DelegationAnalysis
from repro.crawler.crawler import CrawlConfig, Crawler
from repro.crawler.fetcher import SyntheticFetcher
from repro.synthweb.generator import FailureMode

SAMPLE = 1200


def crawl_sample(web, *, scroll: bool):
    crawler = Crawler(SyntheticFetcher(web), config=CrawlConfig(
        scroll_to_lazy_iframes=scroll))
    visits = []
    for rank in range(min(SAMPLE, web.site_count)):
        if web.site(rank).failure is not FailureMode.NONE:
            continue
        visits.append(crawler.visit(web.origin_for_rank(rank), rank=rank))
    return visits


def test_ablation_lazy_iframes(benchmark, ctx):
    web = ctx.web
    with_scroll = benchmark.pedantic(crawl_sample, args=(web,),
                                     kwargs={"scroll": True},
                                     rounds=1, iterations=1)
    without_scroll = crawl_sample(web, scroll=False)

    frames_with = sum(len(v.embedded_frames()) for v in with_scroll)
    frames_without = sum(len(v.embedded_frames()) for v in without_scroll)
    skipped = sum(v.skipped_lazy_iframes for v in without_scroll)

    # Scrolling must recover the skipped iframes.
    assert skipped > 0
    assert frames_with > frames_without
    assert frames_with - frames_without <= skipped + 8  # nested follow-ons

    # Delegation coverage: a scroll-less crawl under-reports delegating
    # sites (lazy widgets like LiveChat and YouTube embeds carry allow).
    delegation_with = DelegationAnalysis(with_scroll)
    delegation_without = DelegationAnalysis(without_scroll)
    assert (delegation_with.sites_delegating
            >= delegation_without.sites_delegating)

    loss = 1 - (frames_without / frames_with)
    assert 0.02 < loss < 0.6, f"unexpected lazy-iframe loss {loss:.1%}"
