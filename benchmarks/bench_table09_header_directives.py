"""Benchmark: regenerate the paper's Table 9 (least-restrictive header directives) from the measurement crawl."""

from repro.experiments.tables import table09_header_directives as experiment


def test_table09_header_directives(benchmark, ctx, record_result):
    result = benchmark.pedantic(experiment, args=(ctx,),
                                rounds=2, iterations=1)
    record_result(result)
    assert result.shape_ok, result.rendered
