"""Benchmark: regenerate the Section 4.3.3 header misconfiguration counts from the measurement crawl."""

from repro.experiments.tables import header_misconfigurations as experiment


def test_header_misconfig(benchmark, ctx, record_result):
    result = benchmark.pedantic(experiment, args=(ctx,),
                                rounds=2, iterations=1)
    record_result(result)
    assert result.shape_ok, result.rendered
