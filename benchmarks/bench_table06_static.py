"""Benchmark: regenerate the paper's Table 6 (top static detections) from the measurement crawl."""

from repro.experiments.tables import table06_static as experiment


def test_table06_static(benchmark, ctx, record_result):
    result = benchmark.pedantic(experiment, args=(ctx,),
                                rounds=2, iterations=1)
    record_result(result)
    assert result.shape_ok, result.rendered
