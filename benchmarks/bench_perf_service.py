"""Benchmark: the policy service under concurrent load (DESIGN.md §4j).

Writes ``BENCH_service.json`` at the repository root (CI uploads it as
an artifact).  One measured pass boots the service in a background
thread and drives it with concurrent keep-alive socket clients cycling
a small payload pool, so the run exercises the full request path —
transport parse, rate limiter, canonical-text cache, adapters — with
genuine cache hits.

Enforced gates (recorded under ``gates`` in the document):

* ``p99_latency_under_bound`` — p99 request latency < 250 ms;
* ``throughput_at_least`` — >= 150 req/s sustained (skipped with the
  reason on single-core hosts);
* ``cache_hit_rate_positive`` — the LRU must see hits on the repeated
  workload;
* ``byte_identical_responses`` — cosmetically different spellings of
  one policy canonicalize to byte-identical responses;
* ``all_responses_ok`` — the load run produces no non-200 response.

``REPRO_SERVICE_CLIENTS`` / ``REPRO_SERVICE_REQUESTS`` scale the run
(defaults: 8 clients x 120 requests; CI smoke uses a smaller tier).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.experiments.perf import write_report
from repro.experiments.service_bench import (
    DEFAULT_CLIENTS,
    DEFAULT_REQUESTS_PER_CLIENT,
    collect_service_bench,
)

REPORT_PATH = Path(__file__).parent.parent / "BENCH_service.json"


def test_perf_service_report(benchmark):
    clients = int(os.environ.get("REPRO_SERVICE_CLIENTS", DEFAULT_CLIENTS))
    requests = int(os.environ.get("REPRO_SERVICE_REQUESTS",
                                  DEFAULT_REQUESTS_PER_CLIENT))
    report = benchmark.pedantic(
        collect_service_bench, rounds=1, iterations=1,
        kwargs={"clients": clients, "requests_per_client": requests})
    write_report(report, REPORT_PATH)

    load = report["load"]
    assert load["non_200_responses"] == 0, load["statuses"]
    assert report["gates"]["p99_latency_under_bound"], (
        f"p99 latency {load['p99_latency_seconds']}s exceeds the "
        f"{report['gates']['p99_latency_bound_seconds']}s bound")
    assert report["gates"]["cache_hit_rate_positive"], report["cache"]
    assert report["gates"]["byte_identical_responses"], (
        report["byte_identity"])
    for gate, value in report["gates"].items():
        if isinstance(value, bool):
            assert value, f"gate {gate} failed"
    for entry in report["gates_skipped"]:
        assert entry.get("gate") and entry.get("reason"), entry
