"""Benchmark: regenerate the Section 5.2 LiveChat case study from the measurement crawl."""

from repro.experiments.tables import livechat_case_study as experiment


def test_livechat_case_study(benchmark, ctx, record_result):
    result = benchmark.pedantic(experiment, args=(ctx,),
                                rounds=2, iterations=1)
    record_result(result)
    assert result.shape_ok, result.rendered
