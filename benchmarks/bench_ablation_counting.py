"""Ablation: first-occurrence-per-frame counting vs raw call counting.

The paper counts "only the first occurrence for each permission in each
frame" so outliers that spam an API cannot inflate the results
(Section 4.1).  This ablation compares the paper's context counts against
naive raw-call counts on the same crawl and verifies the dedup is doing
real work (raw counts are strictly larger) while the *ranking* of the top
permissions stays stable — i.e. the design choice changes magnitudes, not
winners.
"""

from collections import Counter

from repro.analysis.usage import GENERAL_ROW, UsageAnalysis


def raw_call_counts(visits) -> Counter:
    """The ablated counting: every recorded call counts."""
    counts: Counter = Counter()
    for visit in visits:
        for call in visit.calls:
            if call.is_general or call.is_status_check:
                counts[GENERAL_ROW] += 1
            else:
                for permission in call.permissions:
                    counts[permission] += 1
    return counts


def test_ablation_counting(benchmark, ctx):
    visits = ctx.dataset.successful()

    usage = ctx.usage
    deduped = {name: stats.total_contexts
               for name, stats in usage.invocation_stats.items()}

    raw = benchmark(raw_call_counts, visits)

    # Raw counts can never be smaller than deduped context counts.
    for name, contexts in deduped.items():
        assert raw[name] >= contexts, name

    # The dedup must actually bite somewhere (scripts re-invoke APIs).
    inflation = {name: raw[name] / contexts
                 for name, contexts in deduped.items() if contexts >= 20}
    assert any(value > 1.1 for value in inflation.values()), inflation

    # Top-5 ranking is stable across the two counting schemes.
    top_dedup = [name for name, _ in sorted(deduped.items(),
                                            key=lambda kv: -kv[1])[:5]]
    top_raw = [name for name, _ in raw.most_common(5)]
    assert len(set(top_dedup) & set(top_raw)) >= 3
    assert top_dedup[0] == top_raw[0] == GENERAL_ROW
