"""Extension bench: the Feature-Policy → Permissions-Policy transition.

Kaleli et al. measured the predecessor header on 100K sites in 2020; the
paper measures the renamed ecosystem in 2024.  This bench crawls the three
modelled eras and asserts the transition curve: Permissions-Policy rising
from zero to the paper's 4.5 %, Feature-Policy peaking mid-transition and
collapsing to the 0.51 % residual, delegation present throughout.
"""

from repro.synthweb.eras import Era, transition_curve

SITES = 2500


def test_extension_era_transition(benchmark):
    curve = benchmark.pedantic(transition_curve, args=(SITES,),
                               kwargs={"workers": 4}, rounds=1, iterations=1)
    by_era = {point.era: point for point in curve}

    # Permissions-Policy: none → some → the paper's 4.5 %.
    assert by_era[Era.Y2020].pp_top_level_share == 0.0
    assert 0.0 < by_era[Era.Y2022].pp_top_level_share \
        < by_era[Era.Y2024].pp_top_level_share
    assert 0.03 < by_era[Era.Y2024].pp_top_level_share < 0.06

    # Feature-Policy: Kaleli-era ~1 % → transition peak → 0.51 % residual.
    assert by_era[Era.Y2022].fp_top_level_share \
        > by_era[Era.Y2024].fp_top_level_share
    assert by_era[Era.Y2024].fp_top_level_share < 0.02

    # Delegation via `allow` predates the rename and stays in the 10-15 %
    # band the paper reports.
    for point in curve:
        assert 0.05 < point.sites_delegating_share < 0.20
