"""Benchmark: regenerate the paper's Figure 3 (permission support matrix) from the measurement crawl."""

from repro.experiments.tables import fig03_support_matrix as experiment


def test_fig03_support_matrix(benchmark, record_result):
    result = benchmark.pedantic(experiment, args=(None,),
                                rounds=5, iterations=1)
    record_result(result)
    assert result.shape_ok, result.rendered
