"""Benchmark: regenerate the paper's Figure 1 (dynamic instrumentation) from the measurement crawl."""

from repro.experiments.tables import fig01_instrumentation as experiment


def test_fig01_instrumentation(benchmark, record_result):
    result = benchmark.pedantic(experiment, args=(None,),
                                rounds=5, iterations=1)
    record_result(result)
    assert result.shape_ok, result.rendered
