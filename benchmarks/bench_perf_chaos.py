"""Benchmark: the chaos drill — crash-injected crawls self-heal.

Writes ``BENCH_chaos.json`` (and the quarantine report
``BENCH_chaos_quarantine.json``) at the repository root; CI uploads both
as artifacts.  The drill crawls the same sites twice on the process
backend — once crash-free, once under a seeded
:class:`~repro.crawler.chaos.ChaosPolicy` injecting worker deaths, a
hang, a poison rank and a merge failure — with the supervisor healing
every fault (:mod:`repro.experiments.chaos_drill`).

Scale comes from ``REPRO_CHAOS_SITES`` (default 10,000; the CI
chaos-smoke job runs smaller).

Enforced gates (also recorded under ``gates`` in the document):

* the chaos run completes without raising, within the rebuild budget;
* its export is byte-identical (SHA-256) to the crash-free baseline's
  minus exactly the quarantined poison ranks;
* quarantined ranks == the injection plan's poison ranks — isolation
  probes exonerate innocent bystander chunks, so nothing else is lost;
* every once-only injection fired exactly per plan, the watchdog caught
  the hang, and the merge error was retried;
* no ``.wchunk-*`` sidecar wreckage survives the run;
* the disabled supervisor's estimated dispatch overhead stays under 2 %
  of a chunk's duration.

Gates without a meaningful reading for the chosen injection plan are
recorded under ``gates_skipped`` with the reason.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.chaos_drill import collect_chaos
from repro.experiments.perf import write_report

REPORT_PATH = Path(__file__).parent.parent / "BENCH_chaos.json"
QUARANTINE_PATH = (Path(__file__).parent.parent
                   / "BENCH_chaos_quarantine.json")

CHAOS_SITES = int(os.environ.get("REPRO_CHAOS_SITES", "10000"))


def test_perf_chaos_report(benchmark):
    report = benchmark.pedantic(
        lambda: collect_chaos(CHAOS_SITES), rounds=1, iterations=1)
    write_report(report, REPORT_PATH)
    QUARANTINE_PATH.write_text(
        json.dumps(report["quarantine_report"], indent=2) + "\n")

    gates = report["gates"]
    for gate, passed in gates.items():
        assert passed, (
            f"chaos gate {gate!r} failed: "
            f"supervisor={report['supervisor']}, "
            f"fired={report['injections_fired']}")

    assert "gates_skipped" in report
    skipped = {entry["gate"] for entry in report["gates_skipped"]}
    for gate in ("hang_caught_by_watchdog", "merge_retry_recovered"):
        assert gate in gates or gate in skipped, (
            f"{gate} neither evaluated nor recorded as skipped")

    assert report["chaos"]["visits"] == (
        report["site_count"]
        - len(report["quarantine_report"]["quarantined_ranks"]))
