"""Extension bench: quantify the Section 6.2 specification proposals.

Not a paper table — the paper *discusses* these proposals; here we measure
them against the same crawl:

* deny-all default (W3C issue #483): migration cost for header-deploying
  sites that rely on default allowlists for permissions they use;
* local-scheme inheritance fix (issue #552): how many sites are exposed to
  the Table 11 bypass today (self-restricted powerful permission + no
  frame-constraining CSP).
"""

from repro.analysis.proposals import (
    evaluate_default_disallow_all,
    local_scheme_attack_surface,
)


def test_extension_deny_all_breakage(benchmark, ctx):
    visits = ctx.dataset.successful()
    report = benchmark(evaluate_default_disallow_all, visits)

    assert report.header_sites > 0
    # A meaningful minority of header sites relies on defaults they use —
    # the omission risk the paper calls out; but far from everyone breaks.
    assert 0.02 < report.breaking_share < 0.6
    # Ads APIs dominate the breakage: they default to * and are never
    # declared in the copy-paste disable templates.
    top_broken = [name for name, _ in report.broken_permissions.most_common(3)]
    assert "attribution-reporting" in top_broken


def test_extension_attack_surface(benchmark, ctx):
    visits = ctx.dataset.successful()
    report = benchmark(local_scheme_attack_surface, visits)

    assert report.sites_with_self_only_powerful > 0
    # Most careful deployers are still exposed: CSP frame directives are
    # rare, which is exactly why the paper rates the bug as serious.
    assert report.exposure_share > 0.5
    assert (report.exposed_sites + report.protected_by_csp
            == report.sites_with_self_only_powerful)
    # The exposed permissions are the self-restricted powerful ones.
    assert set(report.exposed_permissions) & {"camera", "microphone",
                                              "geolocation"}
