"""Benchmark: regenerate the paper's Tables 10/13 (unused delegated permissions) from the measurement crawl."""

from repro.experiments.tables import table10_overpermission as experiment


def test_table10_overpermission(benchmark, ctx, record_result):
    result = benchmark.pedantic(experiment, args=(ctx,),
                                rounds=2, iterations=1)
    record_result(result)
    assert result.shape_ok, result.rendered
