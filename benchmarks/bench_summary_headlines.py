"""Benchmark: regenerate the Section 4 headline percentages from the measurement crawl."""

from repro.experiments.tables import summary_experiment as experiment


def test_summary_headlines(benchmark, ctx, record_result):
    result = benchmark.pedantic(experiment, args=(ctx,),
                                rounds=2, iterations=1)
    record_result(result)
    assert result.shape_ok, result.rendered
