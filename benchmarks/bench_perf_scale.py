"""Benchmark: paper-scale crawls — sharding, streaming storage, bounded
memory.

Writes ``BENCH_scale.json`` at the repository root (CI uploads it as an
artifact).  Each tier runs crawl → export → summarize with every phase in
its own spawn subprocess so peak RSS is attributable per phase.

Tiers come from ``REPRO_SCALE_TIERS`` (comma-separated site counts;
default ``10000,100000`` — CI smoke sets ``10000``).

Enforced gates (also recorded under ``gates`` in the document):

* every phase's peak RSS stays under the fixed bound
  (:data:`~repro.experiments.scale.RSS_BOUND_BYTES`) — the
  ``collect=False`` bounded-memory contract;
* the store stage (writer-thread CPU inside the store lock) stays at or
  below 25 % of crawl wall time — batched transactions, not per-visit
  commits;
* the sharded crawl's streamed export is byte-identical (SHA-256) to an
  unsharded crawl's at the smallest tier;
* the policy engine's structural decision memo hits on > 50 % of explain
  decisions over the 500-site calibration crawl, with the streaming
  summary field-identical to the materialized one;
* the process-parallel summarize produces a digest-identical summary on
  every tier — and beats the serial pass at the largest tier when the
  runner has cores;
* on a >= 4-core runner, the warm process backend crawls the 10k tier at
  least 2x faster than serial (the ``backend_race`` section).

Gates that cannot be meaningfully evaluated on the runner (e.g. the 2x
race on a single-core container) are recorded under ``gates_skipped``
with the reason instead of silently passing.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.perf import write_report
from repro.experiments.scale import (
    MEMO_RATE_BOUND,
    RSS_BOUND_BYTES,
    STORE_SHARE_BOUND,
    collect_scale,
)

REPORT_PATH = Path(__file__).parent.parent / "BENCH_scale.json"


def test_perf_scale_report(benchmark):
    report = benchmark.pedantic(collect_scale, rounds=1, iterations=1)
    write_report(report, REPORT_PATH)

    for tier in report["tiers"]:
        for phase in ("crawl", "export", "summarize"):
            rss = tier[phase]["peak_rss_bytes"]
            assert rss < RSS_BOUND_BYTES, (
                f"{phase} at {tier['site_count']} sites peaked at "
                f"{rss / 2**20:.0f} MiB (bound: "
                f"{RSS_BOUND_BYTES / 2**20:.0f} MiB)")
        share = tier["crawl"]["store_share"]
        assert share <= STORE_SHARE_BOUND, (
            f"store stage took {share:.1%} of crawl wall time at "
            f"{tier['site_count']} sites (gate: {STORE_SHARE_BOUND:.0%})")
        assert tier["crawl"]["sites_per_second"] > 0
        assert tier["export"]["visits"] == tier["site_count"]
        assert tier["summarize"]["attempted"] == tier["site_count"]
        parallel = tier["summarize_parallel"]
        assert parallel["attempted"] == tier["site_count"]
        assert parallel["identical_to_serial"], (
            f"parallel summarize diverged from serial at "
            f"{tier['site_count']} sites")

    identity = [tier["identity"] for tier in report["tiers"]
                if "identity" in tier]
    assert identity, "no tier ran the sharded-vs-unsharded identity check"
    assert all(entry["identical"] for entry in identity), \
        "sharded crawl's export diverged from the unsharded crawl's"

    memo = report["memo"]
    assert memo["hit_rate"] > MEMO_RATE_BOUND, (
        f"explain memo hit rate {memo['hit_rate']:.1%} on the "
        f"{memo['site_count']}-site crawl (gate: {MEMO_RATE_BOUND:.0%})")
    assert memo["summaries_identical"], \
        "streaming summary diverged from the materialized summary"

    gates = report["gates"]
    assert all(gates[key] for key in (
        "peak_rss_within_bound", "store_share_within_bound",
        "sharded_identical_to_unsharded", "memo_rate_above_bound",
        "memo_summaries_identical", "summarize_parallel_identical"))

    # Runner-capability gates: enforced when present, recorded as skipped
    # (with the reason) when the runner cannot evaluate them.
    assert "gates_skipped" in report
    skipped = {entry["gate"] for entry in report["gates_skipped"]}
    for gate in ("process_2x_serial", "summarize_parallel_faster"):
        if gate in gates:
            assert gates[gate], f"{gate} gate failed: {report.get('backend_race')}"
        else:
            assert gate in skipped, (
                f"{gate} neither evaluated nor recorded as skipped")
