"""Ablation: the 5 % delegation-prevalence threshold (paper Section 5).

The over-permission detector only considers permissions delegated in at
least 5 % of a widget's iframe occurrences "to capture the most prevalent
delegated permissions while minimizing noise".  This ablation sweeps the
threshold and verifies the expected monotonicity: lower thresholds admit
more (noisier) findings, higher thresholds keep only template-level
delegations — while the headline widgets (YouTube, LiveChat) survive every
reasonable setting because their templates delegate on ~2/3+ of
occurrences.
"""

from repro.analysis.overpermission import OverPermissionAnalysis

THRESHOLDS = (0.01, 0.05, 0.10, 0.25, 0.50)


def sweep(visits):
    results = {}
    for threshold in THRESHOLDS:
        analysis = OverPermissionAnalysis(visits,
                                          prevalence_threshold=threshold)
        rows = analysis.unused_delegations()
        results[threshold] = {
            "flagged_sites": len(rows),
            "affected": analysis.total_affected_websites(),
            "sites": {row.site for row in rows},
        }
    return results


def test_ablation_threshold(benchmark, ctx):
    visits = ctx.dataset.successful()
    results = benchmark.pedantic(sweep, args=(visits,), rounds=1,
                                 iterations=1)

    flagged = [results[t]["flagged_sites"] for t in THRESHOLDS]
    affected = [results[t]["affected"] for t in THRESHOLDS]

    # Monotone: relaxing the threshold can only add findings.
    assert flagged == sorted(flagged, reverse=True)
    assert affected == sorted(affected, reverse=True)

    # The paper's headline widgets survive every threshold up to 50 %:
    # their templates delegate on the clear majority of occurrences.
    for threshold in (0.01, 0.05, 0.10, 0.25):
        assert "youtube.com" in results[threshold]["sites"], threshold
        assert "livechatinc.com" in results[threshold]["sites"], threshold

    # The 5 % default must not be vacuous: it should prune something that
    # 1 % admits (one-off delegations).
    assert (results[0.01]["flagged_sites"]
            >= results[0.05]["flagged_sites"])
