"""Benchmark: regenerate the paper's Table 5 (top status-checked permissions) from the measurement crawl."""

from repro.experiments.tables import table05_status_checks as experiment


def test_table05_status_checks(benchmark, ctx, record_result):
    result = benchmark.pedantic(experiment, args=(ctx,),
                                rounds=2, iterations=1)
    record_result(result)
    assert result.shape_ok, result.rendered
