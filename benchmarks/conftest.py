"""Shared fixtures for the benchmark harness.

The heavy work — the calibrated measurement crawl — runs once per session
(at the scale given by ``REPRO_SITES``, default 20,000 sites) and is shared
by every table/figure bench.  Each bench regenerates its paper table from
the crawl, asserts the *shape* matches the paper (winners, orderings,
magnitudes), and records the rendered output under
``benchmarks/results/`` so EXPERIMENTS.md can be regenerated from the same
run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentContext, run_measurement
from repro.experiments.tables import ExperimentResult

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """The session-wide measurement run."""
    return run_measurement()


@pytest.fixture(scope="session")
def record_result():
    """Persist a rendered experiment table for the docs."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(result: ExperimentResult) -> ExperimentResult:
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        status = "shape OK" if result.shape_ok else "SHAPE MISMATCH"
        path.write_text(
            f"{result.title}\n[{status}] {result.notes}\n\n{result.rendered}\n")
        return result

    return _record
