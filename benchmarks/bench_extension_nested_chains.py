"""Extension bench: nested delegation chains (paper Section 2.2.5).

The paper analyses only directly inserted iframes and warns that nested
re-delegation is beyond the top-level site's control.  This bench runs the
chain analysis over the crawl: ads widgets re-delegating their permissions
into sub-syndication frames, with the nested frame's effective policy
re-evaluated from the stored records.
"""

from repro.analysis.chains import NestedDelegationAnalysis


def test_extension_nested_chains(benchmark, ctx):
    visits = ctx.dataset.successful()
    analysis = benchmark.pedantic(NestedDelegationAnalysis, args=(visits,),
                                  rounds=1, iterations=1)

    # Ads sub-syndication produces real chains at depth 2.
    assert analysis.sites_with_nested_delegation > 0
    assert analysis.max_depth >= 2
    assert set(analysis.redelegated_permissions) >= {"attribution-reporting",
                                                     "run-ad-auction"}

    # Once delegated at depth 1, re-delegation essentially always succeeds —
    # exactly the paper's no-control observation.
    assert analysis.enabled_share() > 0.9

    # Chains span three different sites (top → widget → sub-frame).
    assert any(chain.crosses_sites for chain in analysis.chains)
