"""Benchmark: regenerate the paper's Table 2 (permission characteristics) from the measurement crawl."""

from repro.experiments.tables import table02_registry as experiment


def test_table02_registry(benchmark, record_result):
    result = benchmark.pedantic(experiment, args=(None,),
                                rounds=5, iterations=1)
    record_result(result)
    assert result.shape_ok, result.rendered
