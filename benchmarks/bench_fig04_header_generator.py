"""Benchmark: regenerate the paper's Figure 4 (header generator) from the measurement crawl."""

from repro.experiments.tables import fig04_header_generator as experiment


def test_fig04_header_generator(benchmark, record_result):
    result = benchmark.pedantic(experiment, args=(None,),
                                rounds=5, iterations=1)
    record_result(result)
    assert result.shape_ok, result.rendered
