"""Extension bench: header adoption by site popularity.

The paper treats the top 1M as one population; header-measurement
literature consistently finds adoption skewed to popular sites (and the
synthetic web models that skew).  This bench slices the crawl by rank
bucket and asserts the gradient: top sites adopt the Permissions-Policy
header markedly more than the tail, while the global marginal stays at the
paper's 4.5 %.
"""

from repro.analysis.ranks import RankBucketAnalysis


def test_extension_rank_gradient(benchmark, ctx):
    visits = ctx.dataset.successful()
    analysis = benchmark.pedantic(
        RankBucketAnalysis, args=(visits, ctx.web.site_count),
        rounds=1, iterations=1)

    gradient = dict(analysis.adoption_gradient())
    assert analysis.is_adoption_monotone()
    assert gradient["top 2%"] > gradient["tail"] * 1.5

    # Widgets spread across buckets (LiveChat's paper datum: present even
    # in the CrUX top 5,000).
    penetration = dict(analysis.widget_penetration("livechatinc.com"))
    assert penetration["top 2%"] > 0
    assert penetration["tail"] > 0
