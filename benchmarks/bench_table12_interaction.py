"""Benchmark: regenerate the paper's Table 12 (interaction experiment) from the measurement crawl."""

from repro.experiments.tables import table12_interaction as experiment


def test_table12_interaction(benchmark, ctx, record_result):
    result = benchmark.pedantic(experiment, args=(ctx,),
                                rounds=1, iterations=1)
    record_result(result)
    assert result.shape_ok, result.rendered
