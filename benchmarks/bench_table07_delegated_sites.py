"""Benchmark: regenerate the paper's Table 7 (top delegated embedded sites) from the measurement crawl."""

from repro.experiments.tables import table07_delegated_sites as experiment


def test_table07_delegated_sites(benchmark, ctx, record_result):
    result = benchmark.pedantic(experiment, args=(ctx,),
                                rounds=2, iterations=1)
    record_result(result)
    assert result.shape_ok, result.rendered
