"""Benchmark: the shared-index analysis pipeline against the legacy one.

Crawls once, then times :func:`repro.analysis.legacy.summarize_legacy`
(the pre-index multi-pass implementation, with parser interning disabled
so it pays its original re-parse cost) against the indexed
:func:`repro.analysis.summary.summarize` in serial and parallel mode, and
writes ``BENCH_analysis.json`` at the repository root (CI uploads it as an
artifact).

Scale comes from ``REPRO_PERF_SITES`` (default 2,000; CI smoke uses 500).
Enforcement: all three paths must produce field-identical summaries, and
the indexed paths must never be slower than the legacy one.  The 3x
speedup target is recorded in the report and asserted at CI scale.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.experiments.perf import collect_analysis, write_report

REPORT_PATH = Path(__file__).parent.parent / "BENCH_analysis.json"
PERF_SITES = int(os.environ.get("REPRO_PERF_SITES",
                                os.environ.get("REPRO_SITES", "2000")))


def test_perf_analysis_report(benchmark):
    report = benchmark.pedantic(collect_analysis, args=(PERF_SITES,),
                                rounds=1, iterations=1)
    write_report(report, REPORT_PATH)

    assert report["summaries_identical"], \
        "indexed summarize() diverged from the legacy implementation"
    assert report["legacy_seconds"] > 0
    # Stage breakdown: index build plus each headline analysis.
    assert {stage["name"] for stage in report["stages"]} == {
        "index", "usage", "delegation", "headers", "overpermission"}
    assert report["indexed_serial_seconds"] > 0
    assert report["indexed_parallel_seconds"] > 0

    # Hard floor: the index must never lose to the legacy path.
    assert report["speedup_serial_vs_legacy"] >= 1.0, (
        f"indexed serial summarize ({report['indexed_serial_seconds']}s) "
        f"slower than legacy ({report['legacy_seconds']}s)")
    assert report["speedup_parallel_vs_legacy"] >= 1.0, (
        f"indexed parallel summarize ({report['indexed_parallel_seconds']}s) "
        f"slower than legacy ({report['legacy_seconds']}s)")

    # Target: >= 3x at the 500-site CI scale and above, measured on the
    # default summarize() path (parallel=True).
    if PERF_SITES >= 500:
        assert report["speedup_parallel_vs_legacy"] >= 3.0, (
            f"expected >= 3x speedup over the legacy pipeline, got "
            f"{report['speedup_parallel_vs_legacy']}x")
