"""Extension bench: quantify the landing-page limitation (paper §6.1).

The paper acknowledges its crawler "is restricted to the landing page,
which limits visibility into features and permission usage that may only
appear after navigating through the website", calling the result
"conservative underreporting".  The synthetic web models deep-page
functionality; this bench measures the bias a landing-page-only crawl
carries — the number the paper could only reason about.
"""

from repro.analysis.landing_bias import measure_landing_bias


def test_extension_landing_bias(benchmark, ctx):
    report = benchmark.pedantic(
        measure_landing_bias, args=(ctx.web,),
        kwargs={"sample": 250, "subpages": 3}, rounds=1, iterations=1)

    assert report.sites_measured == 250

    # Deep pages reveal permissions on a real minority of sites…
    assert 0.02 < report.extra_share < 0.35
    # …so the landing page captures most, but not all, dynamic coverage —
    # "conservative underreporting", quantified.
    assert 0.6 < report.coverage_ratio < 1.0

    # The newly revealed permissions are the interaction-flavoured ones
    # (store locators, notification banners), not the ad machinery that
    # fires on every page load.
    assert set(report.extra_permissions) & {"geolocation", "notifications",
                                            "web-share", "clipboard-write"}
