"""Benchmark: regenerate the paper's Table 11 (local-scheme spec issue PoC) from the measurement crawl."""

from repro.experiments.tables import table11_spec_issue as experiment


def test_table11_spec_issue(benchmark, record_result):
    result = benchmark.pedantic(experiment, args=(None,),
                                rounds=5, iterations=1)
    record_result(result)
    assert result.shape_ok, result.rendered
