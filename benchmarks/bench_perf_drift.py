"""Benchmark: the longitudinal drift engine (DESIGN.md §4i).

Writes ``BENCH_drift.json`` at the repository root (CI uploads it as an
artifact).  The three era stores are built in the parent through the
measurement cache; every measured phase — self-diff, the 2020→2024
cross-era diff, and two independent HTML renders — runs in its own spawn
subprocess so peak RSS is attributable per phase.

Enforced gates (recorded under ``gates`` in the document):

* ``self_diff_empty`` — diffing a store against itself yields no
  added/removed/changed sites;
* ``diff_rss_within_bound`` — the cross-era diff of two stores streams
  inside the scale harness's RSS bound (no full-dataset materialization);
* ``diff_time_within_bound`` — the diff finishes inside the (generous)
  wall-time bound;
* ``html_deterministic`` — two profile+render passes in separate
  subprocesses produce byte-identical HTML (SHA-256);
* ``fig2_pp_rises`` / ``fig2_fp_falls`` — the stored-crawl timeline
  reproduces the paper's Fig. 2 transition direction.

``REPRO_DRIFT_SITES`` scales the run (default 10,000 sites per era;
CI smoke uses a smaller store).
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.drift_study import (
    DIFF_TIME_BOUND_SECONDS,
    collect_drift_bench,
)
from repro.experiments.perf import write_report
from repro.experiments.scale import RSS_BOUND_BYTES

REPORT_PATH = Path(__file__).parent.parent / "BENCH_drift.json"


def test_perf_drift_report(benchmark):
    report = benchmark.pedantic(collect_drift_bench, rounds=1, iterations=1)
    write_report(report, REPORT_PATH)

    assert report["self_diff"]["is_empty"], (
        f"self-diff of the {report['site_count']}-site era store found "
        f"{report['self_diff']['changed']} changed / "
        f"{report['self_diff']['added']} added / "
        f"{report['self_diff']['removed']} removed sites")
    assert report["self_diff"]["unchanged"] == report["site_count"]

    cross = report["cross_diff"]
    assert cross["peak_rss_bytes"] < RSS_BOUND_BYTES, (
        f"cross-era diff peaked at {cross['peak_rss_bytes'] / 2**20:.0f} "
        f"MiB (bound: {RSS_BOUND_BYTES / 2**20:.0f} MiB)")
    assert cross["seconds"] < DIFF_TIME_BOUND_SECONDS
    # Era stores share site slots (same seed and count), so the 2020→2024
    # movement must show up as changed sites, not churn.
    assert cross["added"] == 0 and cross["removed"] == 0
    assert cross["changed"] > 0
    assert cross["pp_delta"] > 0, (
        "Permissions-Policy adoption did not rise 2020→2024")

    assert report["render_first"]["sha256"] \
        == report["render_second"]["sha256"], \
        "HTML report bytes are not deterministic across renders"
    assert report["render_first"]["bytes"] > 0

    gates = report["gates"]
    assert all(gates[key] for key in (
        "self_diff_empty", "diff_rss_within_bound",
        "diff_time_within_bound", "html_deterministic",
        "fig2_pp_rises", "fig2_fp_falls")), gates

    # Every gate is either evaluated or recorded as skipped with a reason.
    assert "gates_skipped" in report
    for entry in report["gates_skipped"]:
        assert entry.get("gate") and entry.get("reason")
