"""Extension bench: the permission-list fingerprinting surface.

Paper Section 4.1.1 hypothesises that the widely retrieved allowed-feature
lists "enable fingerprinting by revealing differences in permission support
across browsers and even across versions of the same browser" — without
confirming it from crawl data.  This bench quantifies the hypothesis
against the support matrix: how many distinct permission lists exist across
browser releases, how many release pairs they distinguish, and the entropy
of the signal.
"""

from repro.analysis.categories import DelegationPurpose, purpose_clusters
from repro.analysis.fingerprinting import fingerprint_surface


def test_extension_fingerprint_surface(benchmark):
    report = benchmark(fingerprint_surface)

    # Multiple distinct lists exist and most release pairs are told apart —
    # the hypothesis holds structurally.
    assert report.distinct_lists >= 8
    assert report.distinguishability() > 0.7
    assert report.entropy_bits > 2.0

    # Still bounded: identical adjacent releases do collapse into classes.
    assert report.distinct_lists < report.total_releases


def test_extension_purpose_clusters(benchmark, ctx):
    """Section 4.2.1's purpose grouping, reconstructed from delegations."""
    visits = ctx.dataset.successful()
    clusters = benchmark.pedantic(purpose_clusters, args=(visits,),
                                  rounds=1, iterations=1)
    by_purpose = {cluster.purpose: cluster for cluster in clusters}

    # Every purpose the paper names must emerge from the data.
    for purpose in (DelegationPurpose.ADS, DelegationPurpose.MULTIMEDIA,
                    DelegationPurpose.CUSTOMER_SUPPORT,
                    DelegationPurpose.PAYMENT, DelegationPurpose.SESSION):
        assert purpose in by_purpose, purpose

    # …with the paper's exemplars in the right buckets.
    ads_sites = {site for site, _ in by_purpose[DelegationPurpose.ADS].sites}
    assert {"doubleclick.net", "googlesyndication.com"} <= ads_sites
    support_sites = {site for site, _
                     in by_purpose[DelegationPurpose.CUSTOMER_SUPPORT].sites}
    assert "livechatinc.com" in support_sites
    multimedia_sites = {site for site, _
                        in by_purpose[DelegationPurpose.MULTIMEDIA].sites}
    assert "youtube.com" in multimedia_sites
