"""Extension bench: multi-seed robustness of the measurement.

The paper visits each origin once (Appendix A.2 C4) and cannot quantify
run-to-run variance; the synthetic substrate can.  This bench sweeps
independent seeds and asserts (a) no headline metric shows gross bias
against the paper beyond sampling noise + calibration tolerance, and
(b) the seed-to-seed spread of the big shares approaches the binomial
noise floor — i.e. the pipeline contains no hidden nondeterminism.
"""

from repro.experiments.robustness import expected_noise_floor, seed_sweep

SWEEP_SITES = 2000
SEEDS = (7, 77, 777)


def test_extension_robustness(benchmark):
    sweep = benchmark.pedantic(
        seed_sweep, args=(SWEEP_SITES,), kwargs={"seeds": SEEDS},
        rounds=1, iterations=1)

    assert sweep.biased_metrics() == []

    for metric in sweep.metrics:
        if metric.paper_value < 0.25:
            continue
        floor = expected_noise_floor(metric.mean, SWEEP_SITES)
        # Within an order of magnitude of pure binomial noise.
        assert metric.stdev < floor * 12, (metric.metric, metric.stdev,
                                           floor)
