"""Extension bench: robustness of the measurement.

Two parts:

* The paper visits each origin once (Appendix A.2 C4) and cannot quantify
  run-to-run variance; the synthetic substrate can.  The sweep bench runs
  independent seeds and asserts (a) no headline metric shows gross bias
  against the paper beyond sampling noise + calibration tolerance, and
  (b) the seed-to-seed spread of the big shares approaches the binomial
  noise floor — i.e. the pipeline contains no hidden nondeterminism.
* The fault-injection bench reproduces the Section 4 operational claim:
  under heavy injected failure/crash rates the pool still completes, and
  a retry policy shrinks exactly the transient taxonomy classes
  (ephemeral-content-error, load-timeout, final-update-timeout) while
  ``unreachable`` stays untouched.
"""

from repro.crawler.errors import TRANSIENT_TAXONOMIES
from repro.crawler.resilience import RetryPolicy
from repro.experiments.robustness import (
    expected_noise_floor,
    fault_injection_study,
    seed_sweep,
)

SWEEP_SITES = 2000
SEEDS = (7, 77, 777)

FAULT_SITES = 600
FAILURE_RATE = 0.25
CRASH_RATE = 0.05


def test_extension_robustness(benchmark):
    sweep = benchmark.pedantic(
        seed_sweep, args=(SWEEP_SITES,), kwargs={"seeds": SEEDS},
        rounds=1, iterations=1)

    assert sweep.biased_metrics() == []

    for metric in sweep.metrics:
        if metric.paper_value < 0.25:
            continue
        floor = expected_noise_floor(metric.mean, SWEEP_SITES)
        # Within an order of magnitude of pure binomial noise.
        assert metric.stdev < floor * 12, (metric.metric, metric.stdev,
                                           floor)


def test_fault_injection_recovery(benchmark):
    report = benchmark.pedantic(
        fault_injection_study, args=(FAULT_SITES,),
        kwargs={"failure_rate": FAILURE_RATE, "crash_rate": CRASH_RATE,
                "retry_policy": RetryPolicy(max_retries=2)},
        rounds=1, iterations=1)

    # The injected run is genuinely hostile: >= 20 % of visits fail,
    # including non-CrawlError crashes surfacing as minor-crawler-error.
    assert report.injected_failure_share >= 0.20
    assert report.injected_failures.get("minor-crawler-error", 0) \
        > report.baseline_failures.get("minor-crawler-error", 0)

    # The Section 4 shape with retries: every transient class shrinks
    # (strictly in total) and unreachable is invariant.
    assert report.transient_classes_shrunk
    assert report.unreachable_unchanged
    assert report.retries_spent > 0
    for taxonomy in TRANSIENT_TAXONOMIES:
        assert report.recovered_failures.get(taxonomy, 0) \
            <= report.injected_failures.get(taxonomy, 0)

    # Retries never take the taxonomy below the web's intrinsic failure
    # floor: deterministic site failures are re-attempted but stay failed.
    baseline_total = sum(report.baseline_failures.values())
    recovered_total = sum(report.recovered_failures.values())
    assert recovered_total >= baseline_total


GUARD_SITES = 800


def test_guard_overhead_gate(benchmark):
    """DESIGN.md §4g: the guard layer, configured but never triggering,
    must cost < 2 % of the crawl (component-cost estimate, the same
    methodology as the observability gate) and must not change a single
    dataset byte."""
    from repro.experiments.perf import time_guards

    report = benchmark.pedantic(
        time_guards, args=(GUARD_SITES, 2024), kwargs={"workers": 2},
        rounds=1, iterations=1)

    assert report["datasets_identical"], \
        "generous guards changed the crawl dataset"
    assert report["fetches_per_site"] >= 1.0
    assert report["guard_overhead_estimate"] < 0.02, (
        f"guard overhead estimated at "
        f"{report['guard_overhead_estimate']:.2%} of the crawl (gate: 2%)")
