"""Benchmark: regenerate the paper's Table 1 (camera prompt/delegation cases) from the measurement crawl."""

from repro.experiments.tables import table01_policy_cases as experiment


def test_table01_policy_cases(benchmark, record_result):
    result = benchmark.pedantic(experiment, args=(None,),
                                rounds=5, iterations=1)
    record_result(result)
    assert result.shape_ok, result.rendered
