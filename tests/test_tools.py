"""Tests for the developer tools (Section 6.3)."""

import pytest

from repro.crawler.fetcher import SyntheticFetcher
from repro.policy.header import parse_permissions_policy_header
from repro.registry.browsers import CHROMIUM, FIREFOX
from repro.registry.features import UnknownPermissionError
from repro.synthweb.generator import FailureMode, SyntheticWeb
from repro.tools.header_generator import HeaderGenerator, HeaderPreset
from repro.tools.poc import LocalSchemePoC
from repro.tools.recommender import PolicyRecommender
from repro.tools.support_site import SupportSiteReport


class TestSupportSite:
    def test_rows_cover_registry(self):
        report = SupportSiteReport()
        rows = report.rows()
        assert len(rows) == len(report.matrix.registry)
        names = {row["permission"] for row in rows}
        assert {"camera", "browsing-topics", "gamepad"} <= names

    def test_render_contains_headers_and_rows(self):
        text = SupportSiteReport().render()
        assert "Chromium" in text and "camera" in text

    def test_chromium_only_includes_topics(self):
        report = SupportSiteReport()
        names = {p.name for p in report.chromium_only_permissions()}
        assert "browsing-topics" in names
        assert "camera" not in names

    def test_history_report(self):
        text = SupportSiteReport().history_report("storage-access", FIREFOX)
        assert "storage-access" in text and "Firefox" in text

    def test_summary_counts(self):
        counts = SupportSiteReport().summary_counts()
        assert counts["permissions"] >= counts["policy_controlled"]
        assert counts["powerful"] > 0


class TestHeaderGenerator:
    @pytest.fixture(scope="class")
    def generator(self):
        return HeaderGenerator()

    def test_disable_all_parses_and_disables(self, generator):
        header = generator.generate_preset(HeaderPreset.DISABLE_ALL)
        parsed = parse_permissions_policy_header(header)
        assert all(allowlist.is_empty
                   for allowlist in parsed.directives.values())

    def test_disable_all_is_complete(self, generator):
        """Covers every supported permission — no website in the paper's
        data achieved this."""
        header = generator.generate_preset(HeaderPreset.DISABLE_ALL)
        assert generator.is_complete(header)

    def test_disable_powerful_only_targets_powerful(self, generator):
        header = generator.generate_preset(HeaderPreset.DISABLE_POWERFUL)
        parsed = parse_permissions_policy_header(header)
        registry = generator.matrix.registry
        assert parsed.directives
        for feature in parsed.directives:
            assert registry.get(feature).powerful

    def test_custom_adds_self_to_origin_allowlists(self, generator):
        """Issue #480: origins must be accompanied by self."""
        header = generator.generate_custom(
            allow_origins={"camera": ("https://meet.example",)},
            disable_rest=False)
        parsed = parse_permissions_policy_header(header)
        camera = parsed.directives["camera"]
        assert camera.self_
        assert camera.origins

    def test_custom_disable_rest(self, generator):
        header = generator.generate_custom(self_only=("geolocation",))
        parsed = parse_permissions_policy_header(header)
        assert parsed.directives["geolocation"].self_
        assert parsed.directives["camera"].is_empty

    def test_unknown_permission_rejected(self, generator):
        with pytest.raises(UnknownPermissionError):
            generator.generate_custom(disable=("warp-drive",))

    def test_coverage_reports_gaps(self, generator):
        coverage = generator.coverage("camera=()")
        assert coverage["camera"]
        assert not coverage["geolocation"]


class TestLocalSchemePoC:
    def test_demonstrates_issue_without_csp(self):
        assert LocalSchemePoC().demonstrates_issue()

    def test_demonstrates_issue_with_scriptsrc_only_csp(self):
        """The paper's scenario: strict XSS mitigation without frame-src."""
        poc = LocalSchemePoC(csp="script-src 'self'; object-src 'none'")
        assert poc.demonstrates_issue()

    def test_frame_src_csp_blocks_injection(self):
        poc = LocalSchemePoC(csp="frame-src 'self'")
        assert not poc.injection_possible()
        assert not poc.demonstrates_issue()

    @pytest.mark.parametrize("scheme", ["data", "about", "blob"])
    def test_every_local_scheme_works(self, scheme):
        assert LocalSchemePoC(scheme=scheme).demonstrates_issue()

    def test_table11_rows(self):
        rows = LocalSchemePoC().table11()
        assert rows["expected"].local_document_has_camera
        assert not rows["expected"].attacker_has_camera
        assert rows["actual-specification"].attacker_has_camera

    def test_report_text(self):
        text = LocalSchemePoC().report()
        assert "bypass" in text.lower()

    def test_star_header_leaks_even_without_bug(self):
        """Sanity: with camera=(*) the 'leak' is by design, not the bug —
        both modes allow it, so demonstrates_issue is False."""
        poc = LocalSchemePoC(header="camera=(*)")
        rows = poc.table11()
        assert rows["expected"].attacker_has_camera
        assert not poc.demonstrates_issue()


class TestRecommender:
    @pytest.fixture(scope="class")
    def web(self):
        return SyntheticWeb(3000, seed=2024)

    def _overpermissioned_rank(self, web):
        for rank in range(web.site_count):
            spec = web.site(rank)
            if spec.failure is not FailureMode.NONE:
                continue
            for placement in spec.widget_placements:
                if (placement.profile.site == "livechatinc.com"
                        and placement.delegated and not placement.lazy):
                    return rank
        pytest.skip("no LiveChat site in sample")

    def test_flags_livechat_over_delegation(self, web):
        rank = self._overpermissioned_rank(web)
        recommender = PolicyRecommender(SyntheticFetcher(web))
        recommendation = recommender.recommend(web.origin_for_rank(rank))
        flagged = [s for s in recommendation.delegation_suggestions
                   if "livechatinc.com" in s.iframe_src and s.over_granted]
        assert flagged, "LiveChat delegation should be flagged as too broad"
        over = set(flagged[0].over_granted)
        assert {"camera", "microphone"} <= over

    def test_suggested_header_always_parses(self, web):
        recommender = PolicyRecommender(SyntheticFetcher(web))
        checked = 0
        for rank in range(60):
            if web.site(rank).failure is not FailureMode.NONE:
                continue
            recommendation = recommender.recommend(web.origin_for_rank(rank))
            parse_permissions_policy_header(recommendation.suggested_header)
            checked += 1
        assert checked > 20

    def test_unreachable_site_raises(self, web):
        failing = next(r for r in range(web.site_count)
                       if web.site(r).failure is FailureMode.UNREACHABLE)
        recommender = PolicyRecommender(SyntheticFetcher(web))
        with pytest.raises(ValueError):
            recommender.recommend(web.origin_for_rank(failing))

    def test_header_covers_observed_top_level_usage(self, web):
        recommender = PolicyRecommender(SyntheticFetcher(web))
        for rank in range(120):
            if web.site(rank).failure is not FailureMode.NONE:
                continue
            recommendation = recommender.recommend(web.origin_for_rank(rank))
            parsed = parse_permissions_policy_header(
                recommendation.suggested_header)
            from repro.registry.features import DEFAULT_REGISTRY
            for permission in recommendation.observed_top_level:
                perm = DEFAULT_REGISTRY.maybe(permission)
                if perm is None or not perm.policy_controlled:
                    continue
                allowlist = parsed.directives.get(permission)
                assert allowlist is not None and not allowlist.is_empty, (
                    rank, permission)
