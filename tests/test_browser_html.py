"""Tests for the HTML front-end."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.browser.html import (
    document_content_from_html,
    iframe_from_attributes,
    parse_html,
    render_poc_html,
)
from repro.browser.page import FetchResponse, PageLoader
from repro.browser.scripts import ApiCall, Script
from repro.policy.engine import PermissionsPolicyEngine


class TestParseHtml:
    def test_iframe_attributes_extracted(self):
        markup = ('<iframe id="w" class="chat" src="https://a.com/w" '
                  'allow="camera; microphone *" sandbox="allow-scripts" '
                  'loading="lazy"></iframe>')
        parsed = parse_html(markup)
        assert len(parsed.iframes) == 1
        attrs = parsed.iframes[0]
        assert attrs["src"] == "https://a.com/w"
        assert attrs["allow"] == "camera; microphone *"
        assert attrs["sandbox"] == "allow-scripts"
        assert attrs["loading"] == "lazy"
        assert attrs["id"] == "w"

    def test_external_and_inline_scripts_separated(self):
        markup = ('<script src="https://cdn.example/a.js"></script>'
                  "<script>navigator.getBattery();</script>")
        parsed = parse_html(markup)
        assert parsed.external_scripts == ["https://cdn.example/a.js"]
        assert parsed.inline_scripts == ["navigator.getBattery();"]

    def test_malformed_html_never_raises(self):
        parsed = parse_html("<iframe src='x' <script> oops <<>>")
        assert isinstance(parsed.iframes, list)

    @given(st.text(max_size=200))
    def test_arbitrary_input_never_raises(self, markup):
        parse_html(markup)

    def test_unknown_iframe_attributes_ignored(self):
        parsed = parse_html('<iframe src="x" onload="evil()"></iframe>')
        assert "onload" not in parsed.iframes[0]


class TestDocumentContent:
    def test_inline_script_source_feeds_static_analysis(self):
        content = document_content_from_html(
            "<script>navigator.geolocation.getCurrentPosition(cb)</script>")
        from repro.analysis.usage import static_matches
        from repro.registry.features import DEFAULT_REGISTRY
        permissions, _ = static_matches(content.scripts[0].source,
                                        DEFAULT_REGISTRY)
        assert "geolocation" in permissions

    def test_script_resolver_attaches_operations(self):
        def resolver(url):
            if url == "https://cdn.example/t.js":
                return Script(url=url, source="",
                              operations=(ApiCall("navigator.getBattery"),))
            return None

        content = document_content_from_html(
            '<script src="https://cdn.example/t.js"></script>',
            script_resolver=resolver)
        assert content.scripts[0].operations

    def test_unresolved_external_becomes_stub(self):
        content = document_content_from_html(
            '<script src="https://gone.example/x.js"></script>')
        assert content.scripts[0].url == "https://gone.example/x.js"
        assert content.scripts[0].operations == ()

    def test_srcdoc_parsed_recursively(self):
        markup = ('<iframe srcdoc="&lt;iframe src=&quot;https://n.example&quot; '
                  'allow=&quot;camera&quot;&gt;&lt;/iframe&gt;"></iframe>')
        content = document_content_from_html(markup)
        nested = content.iframes[0].local_content
        assert nested is not None
        assert nested.iframes[0].src == "https://n.example"
        assert nested.iframes[0].allow == "camera"

    def test_iframe_from_attributes_defaults(self):
        element = iframe_from_attributes({})
        assert element.src is None
        assert element.is_local_document  # srcdoc-less, src-less


class TestPocHtmlEndToEnd:
    """The paper's PoC repository, as HTML, driven through the real
    loader: parse → frame tree → policy evaluation."""

    def _load(self, engine):
        markup = render_poc_html()

        class OnePageFetcher:
            def fetch(self, url):
                from repro.browser.page import FetchFailure
                if url == "https://victim.example":
                    return FetchResponse(
                        url=url, status=200,
                        headers={"Permissions-Policy": "camera=(self)"},
                        content=document_content_from_html(markup))
                if url.startswith("https://attacker.example"):
                    return FetchResponse(url=url, status=200, headers={},
                                         content=document_content_from_html(
                                             "<script>grab()</script>"))
                raise FetchFailure(url)

        loader = PageLoader(OnePageFetcher(), engine=engine)
        return loader.load("https://victim.example")

    def test_bypass_reproduces_from_real_markup(self):
        engine = PermissionsPolicyEngine(local_scheme_bug=True)
        page = self._load(engine)
        attacker = next(f for f in page.frames
                        if f.url.startswith("https://attacker.example"))
        assert attacker.depth == 2
        assert engine.is_enabled("camera", attacker.policy_frame)

    def test_fixed_engine_blocks_from_real_markup(self):
        engine = PermissionsPolicyEngine(local_scheme_bug=False)
        page = self._load(engine)
        attacker = next(f for f in page.frames
                        if f.url.startswith("https://attacker.example"))
        assert not engine.is_enabled("camera", attacker.policy_frame)

    def test_srcdoc_variant(self):
        markup = render_poc_html(scheme="srcdoc")
        content = document_content_from_html(markup)
        assert content.iframes[0].srcdoc is not None
