"""Tests for allowlist matching and Table 9 strictness classification."""

import pytest

from repro.policy.allowlist import (
    Allowlist,
    DirectiveClass,
    classify_directive,
    strictness_rank,
)
from repro.policy.origin import Origin

SELF = Origin.parse("https://example.org")
SAME_SITE = Origin.parse("https://cdn.example.org")
OTHER = Origin.parse("https://iframe.com")
SRC = Origin.parse("https://widget.net")


class TestAllowlistMatching:
    def test_star_allows_everyone(self):
        allowlist = Allowlist.all_origins()
        assert allowlist.allows(OTHER, self_origin=SELF)
        assert allowlist.allows(SELF, self_origin=SELF)

    def test_self_allows_only_declaring_origin(self):
        allowlist = Allowlist.self_only()
        assert allowlist.allows(SELF, self_origin=SELF)
        assert not allowlist.allows(SAME_SITE, self_origin=SELF)
        assert not allowlist.allows(OTHER, self_origin=SELF)

    def test_nobody_allows_nothing(self):
        allowlist = Allowlist.nobody()
        assert allowlist.is_empty
        assert not allowlist.allows(SELF, self_origin=SELF)

    def test_src_matches_src_origin_only(self):
        allowlist = Allowlist.src_only()
        assert allowlist.allows(SRC, self_origin=SELF, src_origin=SRC)
        assert not allowlist.allows(OTHER, self_origin=SELF, src_origin=SRC)
        assert not allowlist.allows(SRC, self_origin=SELF)  # no src context

    def test_explicit_origin(self):
        allowlist = Allowlist.of(OTHER)
        assert allowlist.allows(OTHER, self_origin=SELF)
        assert not allowlist.allows(SELF, self_origin=SELF)

    def test_explicit_origin_plus_self(self):
        allowlist = Allowlist.of(OTHER, self_=True)
        assert allowlist.allows(OTHER, self_origin=SELF)
        assert allowlist.allows(SELF, self_origin=SELF)

    def test_invalid_tokens_do_not_grant(self):
        allowlist = Allowlist(invalid_tokens=("none", "0"))
        assert allowlist.is_empty
        assert not allowlist.allows(SELF, self_origin=SELF)


class TestMerge:
    def test_merged_unions_flags(self):
        merged = Allowlist.self_only().merged(Allowlist.of(OTHER))
        assert merged.self_ and merged.origins == (OTHER,)

    def test_merged_dedupes_origins(self):
        merged = Allowlist.of(OTHER).merged(Allowlist.of(OTHER))
        assert merged.origins == (OTHER,)


class TestSerialization:
    def test_serialize_disable(self):
        assert Allowlist.nobody().serialize_header() == "()"

    def test_serialize_star(self):
        assert Allowlist.all_origins().serialize_header() == "*"

    def test_serialize_self(self):
        assert Allowlist.self_only().serialize_header() == "(self)"

    def test_serialize_self_plus_origin(self):
        text = Allowlist.of(OTHER, self_=True).serialize_header()
        assert text == '(self "https://iframe.com")'


class TestDirectiveClassification:
    """Table 9 columns: Disable / Self / Same Origin / Same Site /
    Third-party / All."""

    def test_disable(self):
        assert classify_directive(Allowlist.nobody(), SELF) is DirectiveClass.DISABLE

    def test_self(self):
        assert classify_directive(Allowlist.self_only(), SELF) is DirectiveClass.SELF

    def test_same_origin_explicit(self):
        assert classify_directive(Allowlist.of(SELF), SELF) is DirectiveClass.SAME_ORIGIN

    def test_same_site(self):
        assert classify_directive(Allowlist.of(SAME_SITE), SELF) is DirectiveClass.SAME_SITE

    def test_third_party(self):
        assert classify_directive(Allowlist.of(OTHER), SELF) is DirectiveClass.THIRD_PARTY

    def test_star_wins_over_everything(self):
        allowlist = Allowlist.of(OTHER, self_=True, star=True)
        assert classify_directive(allowlist, SELF) is DirectiveClass.STAR

    def test_least_restrictive_wins(self):
        """Paper: `display-capture=(self "https://ads.com")` counts as
        third-party (the least restrictive grant)."""
        allowlist = Allowlist.of(OTHER, self_=True)
        assert classify_directive(allowlist, SELF) is DirectiveClass.THIRD_PARTY

    def test_strictness_order(self):
        assert (strictness_rank(DirectiveClass.DISABLE)
                < strictness_rank(DirectiveClass.SELF)
                < strictness_rank(DirectiveClass.SAME_ORIGIN)
                < strictness_rank(DirectiveClass.SAME_SITE)
                < strictness_rank(DirectiveClass.THIRD_PARTY)
                < strictness_rank(DirectiveClass.STAR))
