"""Tests for reporting helpers, record utilities and DOM structures."""

import pytest

from repro.analysis.report import (
    ranking_overlap,
    render_comparison,
    render_ranking,
    render_table,
)
from repro.browser.dom import Document, DocumentContent, FrameTree, IframeElement
from repro.crawler.records import SiteVisit, failed_visit, successful_visits
from repro.policy.engine import PolicyFrame
from tests.test_analysis import make_call, make_frame, make_visit


class TestRenderTable:
    def test_alignment_and_formatting(self):
        text = render_table(("name", "count", "share"),
                            [("alpha", 1234, 0.5), ("b", 7, 0.125)],
                            title="demo", percent_columns=(2,))
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "1,234" in text
        assert "50.00%" in text
        assert "12.50%" in text

    def test_float_not_percent_by_default(self):
        # Regression: floats in [0, 1] used to auto-format as percentages,
        # so e.g. average_seconds_per_site=0.8 rendered as "80.00%".
        text = render_table(("x", "v"), [("row", 0.8)])
        assert "0.80" in text and "%" not in text

    def test_float_above_one_not_percent(self):
        text = render_table(("x", "v"), [("row", 3.25)])
        assert "3.25" in text and "%" not in text

    def test_percent_column_leaves_other_floats_plain(self):
        text = render_table(("x", "seconds", "share"),
                            [("row", 0.8, 0.8)], percent_columns=(2,))
        assert "0.80" in text and "80.00%" in text

    def test_empty_rows(self):
        text = render_table(("a", "b"), [])
        assert "a" in text

    def test_comparison_shows_deviation(self):
        text = render_comparison([("metric", 0.5, 0.55)])
        assert "+10.0%" in text

    def test_comparison_zero_baseline_renders_na(self):
        # Regression: a zero paper baseline used to render "+nan%".
        text = render_comparison([("metric", 0.0, 0.55)])
        assert "n/a" in text
        assert "nan" not in text

    def test_ranking_marks_matches(self):
        text = render_ranking("t", ["a", "b"], ["a", "c"])
        lines = text.splitlines()
        assert any(line.rstrip().endswith("=") for line in lines)

    def test_ranking_uneven_lengths(self):
        text = render_ranking("t", ["a", "b", "c"], ["a"])
        assert "c" in text


class TestRankingOverlap:
    def test_identical(self):
        assert ranking_overlap(["a", "b"], ["b", "a"]) == 1.0

    def test_disjoint(self):
        assert ranking_overlap(["a"], ["b"]) == 0.0

    def test_partial(self):
        assert ranking_overlap(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)

    def test_empty(self):
        assert ranking_overlap([], []) == 1.0


class TestRecordHelpers:
    def test_top_frame_lookup(self):
        visit = make_visit(0, [make_frame(0, "https://a.com")])
        assert visit.top_frame.frame_id == 0

    def test_top_frame_missing_raises(self):
        visit = SiteVisit(rank=0, requested_url="x", final_url="x",
                          success=True)
        with pytest.raises(ValueError):
            visit.top_frame

    def test_frame_by_id(self):
        frames = [make_frame(0, "https://a.com"),
                  make_frame(7, "https://b.com/w", parent=0, depth=1)]
        visit = make_visit(0, frames)
        assert visit.frame_by_id(7).site == "b.com"
        with pytest.raises(KeyError):
            visit.frame_by_id(99)

    def test_calls_in_frame(self):
        frames = [make_frame(0, "https://a.com")]
        calls = [make_call(0, "navigator.getBattery", "invoke", ["battery"]),
                 make_call(1, "navigator.getBattery", "invoke", ["battery"])]
        visit = make_visit(0, frames, calls)
        assert len(visit.calls_in_frame(0)) == 1

    def test_failed_visit_and_filter(self):
        failed = failed_visit(3, "https://x.com", "load-timeout")
        ok = make_visit(4, [make_frame(0, "https://a.com")])
        assert successful_visits([failed, ok]) == [ok]
        assert failed.failure == "load-timeout"

    def test_call_kind_predicates(self):
        general = make_call(0, "document.featurePolicy.features", "general")
        check = make_call(0, "navigator.permissions.query", "status-check",
                          ["camera"])
        invoke = make_call(0, "navigator.getBattery", "invoke", ["battery"])
        assert general.is_general and not general.is_invoke
        assert check.is_status_check
        assert invoke.is_invoke
        assert general.uses_deprecated_feature_policy_api


class TestIframeElement:
    def test_attribute_dict_skips_empty(self):
        element = IframeElement(src="https://a.com/w", allow="camera")
        attrs = element.attribute_dict()
        assert attrs == {"src": "https://a.com/w", "allow": "camera"}

    def test_lazy_detection_case_insensitive(self):
        assert IframeElement(src="x", loading="LAZY").lazy
        assert not IframeElement(src="x", loading="eager").lazy

    def test_local_document_variants(self):
        assert IframeElement(srcdoc="<p/>").is_local_document
        assert IframeElement(src="data:text/html,x").is_local_document
        assert IframeElement(src="javascript:void(0)").is_local_document
        assert not IframeElement(src="https://a.com").is_local_document

    def test_local_scheme_values(self):
        assert IframeElement(srcdoc="<p/>").local_scheme == "about"
        assert IframeElement(src="blob:abc").local_scheme == "blob"


class TestFrameTree:
    def _tree(self):
        top_pf = PolicyFrame.top("https://a.com")
        tree = FrameTree()
        top = Document(url="https://a.com", origin=top_pf.origin, headers={},
                       content=DocumentContent(), policy_frame=top_pf,
                       frame_id=0)
        tree.add(top)
        child_pf = top_pf.child("https://b.com/w")
        tree.add(Document(url="https://b.com/w", origin=child_pf.origin,
                          headers={}, content=DocumentContent(),
                          policy_frame=child_pf, frame_id=1, parent=top,
                          depth=1))
        local_pf = top_pf.local_child()
        tree.add(Document(url="data:x", origin=local_pf.origin, headers={},
                          content=DocumentContent(), policy_frame=local_pf,
                          frame_id=2, parent=top, depth=1))
        return tree

    def test_structure_queries(self):
        tree = self._tree()
        assert len(tree) == 3
        assert tree.top.frame_id == 0
        assert len(tree.embedded()) == 2
        assert len(tree.local_documents()) == 1
        assert [f.site for f in tree.external_documents()] == ["b.com"]

    def test_by_id_raises_for_unknown(self):
        with pytest.raises(KeyError):
            self._tree().by_id(42)

    def test_empty_tree_top_raises(self):
        with pytest.raises(ValueError):
            FrameTree().top

    def test_header_lookup_case_insensitive(self):
        tree = self._tree()
        tree.top.headers["permissions-policy"] = "camera=()"
        assert tree.top.header("Permissions-Policy") == "camera=()"
