"""Tests for the companion-website generator (Figures 3 and 4)."""

import pytest

from repro.cli import main
from repro.policy.header import parse_permissions_policy_header
from repro.tools.site_generator import SiteGenerator


@pytest.fixture(scope="module")
def site():
    return SiteGenerator()


class TestIndexPage:
    def test_contains_every_permission(self, site):
        html = site.render_index()
        for name in ("camera", "browsing-topics", "storage-access",
                     "gamepad"):
            assert name in html

    def test_browser_columns_present(self, site):
        html = site.render_index()
        for browser in ("Chromium", "Firefox", "Safari"):
            assert f"<th>{browser}</th>" in html

    def test_deprecated_permissions_marked(self, site):
        html = site.render_index()
        assert 'class="deprecated">interest-cohort' in html

    def test_changelog_records_floc_removal(self, site):
        """interest-cohort shipped and was pulled again — the changelog
        view must show the transition."""
        html = site.render_index()
        assert "interest-cohort" in html
        assert "removed" in html


class TestGeneratorPage:
    def test_presets_embedded_and_parse(self, site):
        html = site.render_generator()
        assert "Permissions-Policy: " in html
        # Extract the disable-all preset and round-trip it.
        marker = '<pre id="preset-all">Permissions-Policy: '
        start = html.index(marker) + len(marker)
        end = html.index("</pre>", start)
        header = html[start:end]
        parsed = parse_permissions_policy_header(header)
        assert all(a.is_empty for a in parsed.directives.values())

    def test_permission_list_embedded_as_json(self, site):
        html = site.render_generator()
        assert '"name": "camera"' in html
        assert '"powerful": true' in html

    def test_powerful_marker_in_picker(self, site):
        assert "⚠" in site.render_generator()


class TestBuild:
    def test_build_writes_both_pages(self, site, tmp_path):
        paths = site.build(tmp_path / "site")
        assert [p.name for p in paths] == ["index.html", "generator.html"]
        for path in paths:
            assert path.exists()
            assert path.read_text().startswith("<!doctype html>")

    def test_cli_build_site(self, tmp_path, capsys):
        out = str(tmp_path / "site")
        assert main(["build-site", "--output-dir", out]) == 0
        assert "index.html" in capsys.readouterr().out
