"""Tests for nested delegation chains and policy-frame reconstruction."""

import pytest

from repro.analysis.chains import (
    DelegationChain,
    NestedDelegationAnalysis,
    rebuild_policy_frames,
)
from repro.policy.engine import PermissionsPolicyEngine
from tests.test_analysis import make_frame, make_visit

ENGINE = PermissionsPolicyEngine()


def chain_visit(*, top_header=None, mid_allow="camera",
                deep_allow="camera", deep_url="https://deep.example/n"):
    headers = {"Permissions-Policy": top_header} if top_header else {}
    frames = [
        make_frame(0, "https://a.com", headers=headers),
        make_frame(1, "https://widget.example/w", parent=0, depth=1,
                   allow=mid_allow),
        make_frame(2, deep_url, parent=1, depth=2, allow=deep_allow),
    ]
    return make_visit(0, frames)


class TestRebuildPolicyFrames:
    def test_rebuilt_tree_matches_policy_semantics(self):
        """Reconstructed frames must give the same Table-1 answers as
        frames built live."""
        visit = chain_visit(top_header="camera=(self)")
        frames = rebuild_policy_frames(visit)
        assert ENGINE.is_enabled("camera", frames[0])
        assert not ENGINE.is_enabled("camera", frames[1])  # Table 1 case 4

    def test_rebuild_handles_local_frames(self):
        frames_in = [
            make_frame(0, "https://a.com",
                       headers={"Permissions-Policy": "camera=(self)"}),
            make_frame(1, "data:text/html,x", parent=0, depth=1,
                       is_local=True),
        ]
        frames = rebuild_policy_frames(make_visit(0, frames_in))
        assert frames[1].is_local_scheme
        assert ENGINE.is_enabled("camera", frames[1])

    def test_rebuild_respects_sandbox(self):
        frames_in = [
            make_frame(0, "https://a.com"),
            make_frame(1, "https://b.com/w", parent=0, depth=1,
                       allow="camera"),
        ]
        frames_in[1].iframe_attributes["sandbox"] = "allow-scripts"
        frames = rebuild_policy_frames(make_visit(0, frames_in))
        assert frames[1].sandboxed
        assert not ENGINE.is_enabled("camera", frames[1])


class TestNestedDelegation:
    def test_redelegation_chain_detected(self):
        analysis = NestedDelegationAnalysis([chain_visit()])
        assert analysis.sites_with_nested_delegation == 1
        assert len(analysis.chains) == 1
        chain = analysis.chains[0]
        assert chain.permission == "camera"
        assert chain.depth == 2
        assert chain.frame_sites == ("a.com", "widget.example",
                                     "deep.example")
        assert chain.nested_frame_enabled
        assert chain.crosses_sites

    def test_deep_allow_without_ancestor_delegation_is_not_a_chain(self):
        """A depth-2 allow for a permission nobody delegated above is a
        fresh delegation, not a re-delegation."""
        analysis = NestedDelegationAnalysis(
            [chain_visit(mid_allow="microphone")])
        assert analysis.chains == []

    def test_top_level_header_cannot_stop_redelegation(self):
        """The Section 2.2.5 observation: the top-level header names only
        widget.example, yet deep.example ends up with the camera."""
        analysis = NestedDelegationAnalysis([chain_visit(
            top_header='camera=(self "https://widget.example")')])
        assert len(analysis.chains) == 1
        chain = analysis.chains[0]
        assert chain.nested_frame_enabled
        assert chain.escapes_top_level_policy
        assert analysis.escaped_chains() == [chain]

    def test_disabled_feature_chain_not_enabled(self):
        analysis = NestedDelegationAnalysis(
            [chain_visit(top_header="camera=()")])
        assert len(analysis.chains) == 1
        assert not analysis.chains[0].nested_frame_enabled
        assert not analysis.chains[0].escapes_top_level_policy

    def test_enabled_share(self):
        ok = chain_visit()
        blocked = chain_visit(top_header="camera=()")
        blocked.rank = 1
        analysis = NestedDelegationAnalysis([ok, blocked])
        assert analysis.enabled_share() == pytest.approx(0.5)

    def test_counter_and_depth(self):
        analysis = NestedDelegationAnalysis([chain_visit()])
        assert analysis.redelegated_permissions["camera"] == 1
        assert analysis.max_depth == 2

    def test_no_deep_frames_no_chains(self):
        frames = [make_frame(0, "https://a.com")]
        analysis = NestedDelegationAnalysis([make_visit(0, frames)])
        assert analysis.chains == []
        assert analysis.enabled_share() == 0.0
