"""Hostile-input hardening (DESIGN.md §4g).

Four layers under adversarial input:

* the seeded corpus itself is deterministic and covers every strategy;
* parsers: lenient mode never raises on any corpus value, strict mode
  raises exactly where it always did (frozen differential);
* guards: truncation, watchdog, frame caps and the per-origin circuit
  breaker, and their composition with retries;
* the whole pipeline: generate → crawl → store → index → summarize never
  raises on hostile input and stays byte-identical across backends.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.index import DatasetIndex
from repro.analysis.summary import summarize
from repro.crawler.crawler import Crawler, CrawlConfig
from repro.crawler.errors import UnreachableError
from repro.crawler.fetcher import SyntheticFetcher
from repro.crawler.guards import (
    CircuitBreaker,
    CircuitOpenError,
    GUARD_ALLOW_TRUNCATED,
    GUARD_BREAKER_OPEN,
    GUARD_FRAMES_CAPPED,
    GUARD_HEADER_TRUNCATED,
    GUARD_SCRIPT_TRUNCATED,
    GUARD_WATCHDOG,
    GuardedFetcher,
    ResourceGuards,
    origin_key,
)
from repro.crawler.integrity import canonical_visit_bytes
from repro.crawler.pool import CrawlerPool
from repro.crawler.storage import CrawlStore
from repro.crawler.telemetry import CrawlTelemetry
from repro.policy.allow_attr import parse_allow_attribute
from repro.policy.feature_policy import parse_feature_policy_header
from repro.policy.header import (
    HeaderParseError,
    parse_permissions_policy_header,
)
from repro.synthweb.generator import SyntheticWeb
from repro.synthweb.hostile import (
    HostileConfig,
    HostileFetcher,
    HostileFetcherSpec,
    STRATEGIES,
    deep_iframe_chain,
    hostile_values,
)

CORPUS_SEED = 1
CORPUS = hostile_values(CORPUS_SEED, 32)

#: Frozen differential: corpus indices where a STRICT Permissions-Policy
#: parse raises HeaderParseError.  The lenient path must absorb exactly
#: these (and nothing else may escape as any other exception).  Indices
#: 2/10/18/26 are the "huge-token" strategy, which is valid
#: structured-field syntax.  If the corpus generator changes, recompute
#: deliberately — this list is the regression contract.
STRICT_RAISE_INDICES = frozenset(range(32)) - {2, 10, 18, 26}


class TestCorpus:
    def test_deterministic(self):
        assert hostile_values(CORPUS_SEED, 32) == CORPUS
        assert hostile_values(CORPUS_SEED + 1, 32) != CORPUS

    def test_covers_every_strategy(self):
        assert len(CORPUS) >= len(STRATEGIES)

    def test_no_lone_surrogates(self):
        # Lone surrogates cannot cross sqlite3 binding or strict JSON;
        # the corpus must exercise our hardening, not the stdlib's.
        for value in CORPUS:
            value.encode("utf-8")  # raises on lone surrogates

    def test_payload_sizing(self):
        big = hostile_values(CORPUS_SEED, 8, payload_bytes=1 << 20)
        assert max(len(v) for v in big) >= 1 << 20


class TestLenientParsers:
    @pytest.mark.parametrize("index", range(len(CORPUS)))
    def test_lenient_never_raises(self, index):
        value = CORPUS[index]
        parsed = parse_permissions_policy_header(value, mode="lenient")
        assert parsed.raw == value
        if parsed.dropped:
            assert parsed.issues and not parsed.directives
        fp = parse_feature_policy_header(value, mode="lenient")
        assert fp.raw == value
        allow = parse_allow_attribute(value, mode="lenient")
        assert allow.raw == value

    def test_strict_differential_frozen(self):
        raised = set()
        for index, value in enumerate(CORPUS):
            try:
                parse_permissions_policy_header(value)
            except HeaderParseError:
                raised.add(index)
        assert raised == STRICT_RAISE_INDICES

    def test_strict_fp_and_allow_never_raise_on_corpus(self):
        # These grammars tolerate garbage by construction (invalid tokens
        # are collected, not fatal); freeze that property too.
        for value in CORPUS:
            parse_feature_policy_header(value)
            parse_allow_attribute(value)

    def test_lenient_agrees_with_strict_on_success(self):
        for index in sorted(frozenset(range(32)) - STRICT_RAISE_INDICES):
            value = CORPUS[index]
            strict = parse_permissions_policy_header(value)
            lenient = parse_permissions_policy_header(value, mode="lenient")
            assert not lenient.dropped
            assert lenient.directives == strict.directives

    def test_lenient_does_not_pollute_interned_cache(self):
        value = CORPUS[0]
        parse_permissions_policy_header.cache_clear()
        dropped = parse_permissions_policy_header(value, mode="lenient")
        assert dropped.dropped
        # The failing parse must not be cached as a success...
        with pytest.raises(HeaderParseError):
            parse_permissions_policy_header(value)
        # ...and successful strict results stay issue-free objects.
        ok = parse_permissions_policy_header("camera=(self)")
        assert ok.issues == () and not ok.dropped

    @settings(max_examples=200, deadline=None)
    @given(st.text(alphabet=st.characters(codec="utf-8"), max_size=200))
    def test_lenient_never_raises_property(self, raw):
        parsed = parse_permissions_policy_header(raw, mode="lenient")
        assert parsed.raw == raw
        parse_feature_policy_header(raw, mode="lenient")
        parse_allow_attribute(raw, mode="lenient")

    @settings(max_examples=200, deadline=None)
    @given(st.text(alphabet=st.characters(codec="utf-8"), max_size=200))
    def test_strict_raises_only_header_parse_error(self, raw):
        try:
            strict = parse_permissions_policy_header(raw)
        except HeaderParseError:
            assert parse_permissions_policy_header(raw,
                                                   mode="lenient").dropped
        else:
            lenient = parse_permissions_policy_header(raw, mode="lenient")
            assert lenient.directives == strict.directives


class _Dead:
    """Fetcher whose every fetch is a non-transient failure."""

    def __init__(self):
        self.calls = 0

    def fetch(self, url):
        self.calls += 1
        raise UnreachableError(f"dead: {url}")


class TestCircuitBreaker:
    def test_opens_after_threshold_and_half_opens(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_attempts=2)
        origin = "https://dead.example"
        for _ in range(2):
            assert breaker.allow(origin)
            breaker.record_failure(origin, transient=False)
        assert breaker.state(origin) == "open"
        assert not breaker.allow(origin)      # rejected
        assert breaker.allow(origin)          # half-open probe
        breaker.record_success(origin)
        assert breaker.state(origin) == "closed"
        assert breaker.opened_count == 1
        assert breaker.short_circuits == 1

    def test_transient_failures_never_trip(self):
        breaker = CircuitBreaker(failure_threshold=1)
        for _ in range(10):
            breaker.record_failure("https://flaky.example", transient=True)
        assert breaker.state("https://flaky.example") == "closed"

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_attempts=1)
        origin = "https://dead.example"
        breaker.record_failure(origin, transient=False)
        assert breaker.state(origin) == "open"
        assert breaker.allow(origin)          # immediate half-open probe
        breaker.record_failure(origin, transient=False)
        assert breaker.state(origin) == "open"
        assert breaker.opened_count == 2

    def test_guarded_fetcher_short_circuits(self):
        dead = _Dead()
        guarded = GuardedFetcher(
            dead, ResourceGuards(breaker_failure_threshold=2,
                                 breaker_cooldown_attempts=3))
        url = "https://dead.example/x"
        for _ in range(2):
            with pytest.raises(UnreachableError):
                guarded.fetch(url)
        assert dead.calls == 2
        # Circuit open: next fetches are rejected without touching inner.
        with pytest.raises(CircuitOpenError):
            guarded.fetch(url)
        assert dead.calls == 2
        kinds = [event.kind for event in guarded.events]
        assert kinds.count(GUARD_BREAKER_OPEN) == 1

    def test_origin_key(self):
        assert origin_key("https://A.Example:8443/p") == \
            "https://a.example:8443"
        assert origin_key("about:srcdoc") == "about:"


class TestGuards:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceGuards(max_header_bytes=0)
        with pytest.raises(ValueError):
            ResourceGuards(watchdog_deadline_seconds=0.0)
        with pytest.raises(ValueError):
            ResourceGuards(breaker_cooldown_attempts=0)

    def test_truncations_and_events(self):
        web = SyntheticWeb(10, seed=5)
        spec = HostileFetcherSpec(HostileConfig(seed=2, payload_bytes=8192))
        guards = ResourceGuards(max_header_bytes=256, max_script_bytes=256,
                                max_allow_attr_length=64)
        telemetry = CrawlTelemetry()
        pool = CrawlerPool(web, config=CrawlConfig(guards=guards),
                           fetcher_spec=spec)
        dataset = pool.run(list(range(10)), telemetry=telemetry)
        counts = telemetry.snapshot().guard_counts
        assert counts.get(GUARD_HEADER_TRUNCATED, 0) > 0
        assert counts.get(GUARD_SCRIPT_TRUNCATED, 0) > 0
        assert counts.get(GUARD_ALLOW_TRUNCATED, 0) > 0
        for visit in dataset.visits:
            for frame in visit.frames:
                for value in frame.headers.values():
                    assert len(value.encode("utf-8")) <= 256
            for script in visit.scripts:
                assert len(script.source.encode("utf-8")) <= 256

    def test_watchdog_converts_to_final_update_timeout(self):
        web = SyntheticWeb(10, seed=5)
        guards = ResourceGuards(watchdog_deadline_seconds=20.0)
        pool = CrawlerPool(web, config=CrawlConfig(guards=guards))
        dataset = pool.run(list(range(10)))
        baseline = CrawlerPool(web).run(list(range(10)))
        converted = [
            (old, new) for old, new
            in zip(baseline.visits, dataset.visits)
            if old.success and old.duration_seconds > 20.0]
        assert converted, "expected some visits over the deadline"
        for old, new in converted:
            assert not new.success
            assert new.failure == "final-update-timeout"
            assert new.duration_seconds == 20.0
            assert "watchdog" in (new.error_detail or "")

    def test_frames_cap_drops_children_consistently(self):
        web = SyntheticWeb(10, seed=5)
        guards = ResourceGuards(max_frames_per_visit=2)
        dataset = CrawlerPool(web, config=CrawlConfig(guards=guards)).run(
            list(range(10)))
        for visit in dataset.visits:
            assert len(visit.frames) <= 2
            kept = {frame.frame_id for frame in visit.frames}
            assert all(call.frame_id in kept for call in visit.calls)
            assert all(script.frame_id in kept for script in visit.scripts)
            assert all(prompt.requesting_frame_id in kept
                       for prompt in visit.prompts)

    def test_disabled_guards_change_nothing(self):
        web = SyntheticWeb(10, seed=5)
        plain = CrawlerPool(web).run(list(range(10)))
        generous = ResourceGuards(
            max_header_bytes=1 << 22, max_script_bytes=1 << 22,
            max_allow_attr_length=1 << 16, max_frames_per_visit=10_000,
            watchdog_deadline_seconds=10_000.0,
            breaker_failure_threshold=50)
        guarded = CrawlerPool(web, config=CrawlConfig(guards=generous)).run(
            list(range(10)))
        assert [canonical_visit_bytes(v) for v in plain.visits] == \
            [canonical_visit_bytes(v) for v in guarded.visits]

    def test_deep_iframe_chain_is_bounded_by_max_depth(self):
        web = SyntheticWeb(3, seed=5)
        config = HostileConfig(seed=2, deep_iframe_rate=1.0,
                               iframe_chain_depth=100,
                               header_rate=0.0, fp_header_rate=0.0,
                               allow_rate=0.0, script_rate=0.0)
        crawler = Crawler(HostileFetcher(SyntheticFetcher(web), config))
        visit = crawler.visit(web.origin_for_rank(0), rank=0)
        assert visit.success
        assert max(frame.depth for frame in visit.frames) <= \
            CrawlConfig().max_depth

    def test_guard_events_flow_into_watchdog_metric_kinds(self):
        web = SyntheticWeb(6, seed=5)
        guards = ResourceGuards(watchdog_deadline_seconds=20.0,
                                max_frames_per_visit=2)
        telemetry = CrawlTelemetry()
        CrawlerPool(web, config=CrawlConfig(guards=guards)).run(
            list(range(6)), telemetry=telemetry)
        counts = telemetry.snapshot().guard_counts
        assert set(counts) <= {GUARD_WATCHDOG, GUARD_FRAMES_CAPPED}
        assert counts


HOSTILE_GUARDS = ResourceGuards(
    max_header_bytes=4096, max_script_bytes=4096,
    max_allow_attr_length=512, max_frames_per_visit=64,
    watchdog_deadline_seconds=90.0, breaker_failure_threshold=3)


class TestHostilePipeline:
    """The acceptance drill: full pipeline, three seeds, three backends."""

    @pytest.mark.parametrize("seed", [2, 3, 4])
    def test_differential_across_backends(self, seed, tmp_path):
        web = SyntheticWeb(10, seed=seed)
        spec = HostileFetcherSpec(HostileConfig(seed=seed,
                                                payload_bytes=4096))
        config = CrawlConfig(guards=HOSTILE_GUARDS)
        encodings = {}
        for backend in ("serial", "thread", "process"):
            pool = CrawlerPool(web, workers=2, config=config,
                               fetcher_spec=spec)
            dataset = pool.run(list(range(10)), backend=backend)
            encodings[backend] = [canonical_visit_bytes(v)
                                  for v in dataset.visits]
        assert encodings["serial"] == encodings["thread"]
        assert encodings["serial"] == encodings["process"]

        # store → verify → load → index → summarize, never raising
        path = tmp_path / "hostile.sqlite"
        with CrawlStore(path) as store:
            store.save_dataset(dataset)
            report = store.verify()
            assert report.ok and report.verified_rows == 10
            loaded = store.load_dataset()
        assert [canonical_visit_bytes(v) for v in loaded.visits] == \
            encodings["serial"]
        DatasetIndex(loaded.visits)
        summarize(loaded)

    def test_unguarded_hostile_crawl_never_raises(self):
        web = SyntheticWeb(8, seed=6)
        spec = HostileFetcherSpec(HostileConfig(seed=6, payload_bytes=4096))
        dataset = CrawlerPool(web, fetcher_spec=spec).run(list(range(8)))
        assert dataset.attempted == 8
        summarize(dataset)

    def test_bit_flip_quarantine_full_coverage(self, tmp_path):
        web = SyntheticWeb(10, seed=2)
        spec = HostileFetcherSpec(HostileConfig(seed=2, payload_bytes=2048))
        dataset = CrawlerPool(web, fetcher_spec=spec).run(list(range(10)))
        path = tmp_path / "flip.sqlite"
        with CrawlStore(path) as store:
            store.save_dataset(dataset)
            # Flip bits in every table's own way; calls/scripts rows do
            # not exist at every rank, so pick ranks that have them.
            call_rank = store._conn.execute(
                "SELECT rank FROM calls WHERE rank NOT IN (1, 3) "
                "ORDER BY rank LIMIT 1").fetchone()[0]
            script_rank = store._conn.execute(
                "SELECT rank FROM scripts WHERE rank NOT IN (1, 3, ?) "
                "ORDER BY rank LIMIT 1", (call_rank,)).fetchone()[0]
            flipped = {1, 3, call_rank, script_rank}
            assert len(flipped) == 4
            store._conn.execute(
                "UPDATE visits SET duration_seconds = duration_seconds + 1 "
                "WHERE rank = 1")
            store._conn.execute(
                "UPDATE frames SET headers = '{broken' WHERE rank = 3")
            store._conn.execute(
                "UPDATE calls SET permissions = 'no-json' WHERE rank = ?",
                (call_rank,))
            store._conn.execute(
                "UPDATE scripts SET source = source || 'X' WHERE rank = ?",
                (script_rank,))
            store._conn.commit()
            report = store.verify()
            assert {bad.rank for bad in report.corrupt} == flipped
            # load_dataset tolerates the damage (counted, not fatal)
            loaded = store.load_dataset()
            assert len(loaded.visits) == 10
            repaired = store.verify(repair=True)
            assert repaired.quarantined == 4
            assert {rank for rank, _, _ in store.quarantine_rows()} == \
                flipped
            clean = store.verify()
            assert clean.ok and clean.total_rows == 6
            assert clean.previously_quarantined == 4
            # a re-crawled rank supersedes its quarantine entry
            store.save_visit(dataset.visits[1])
            assert {rank for rank, _, _ in store.quarantine_rows()} == \
                flipped - {1}
