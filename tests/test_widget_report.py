"""Tests for the widget dossier tool (the Section 5.2 case-study generator)."""

import pytest

from repro.analysis.categories import DelegationPurpose
from repro.crawler.pool import CrawlerPool
from repro.synthweb.generator import SyntheticWeb
from repro.tools.widget_report import WidgetReporter


@pytest.fixture(scope="module")
def reporter():
    web = SyntheticWeb(3000, seed=2024)
    dataset = CrawlerPool(web, workers=2).run()
    return WidgetReporter(dataset.successful())


class TestDossier:
    def test_livechat_dossier_matches_case_study(self, reporter):
        dossier = reporter.dossier("livechatinc.com")
        assert dossier.delegation_rate > 0.95
        assert dossier.purpose is DelegationPurpose.CUSTOMER_SUPPORT
        assert set(dossier.unused_delegations) == {
            "camera", "microphone", "clipboard-read"}
        assert set(dossier.hijackable_powerful) == {
            "camera", "microphone", "clipboard-read"}
        assert dossier.is_over_permissioned
        assert dossier.overpermissioned_websites > 0

    def test_livechat_template_captured(self, reporter):
        dossier = reporter.dossier("livechatinc.com")
        assert dossier.templates
        top_template = dossier.templates[0][0]
        assert "microphone *" in top_template

    def test_stripe_is_clean(self, reporter):
        dossier = reporter.dossier("stripe.com")
        assert dossier.purpose is DelegationPurpose.PAYMENT
        assert not dossier.is_over_permissioned
        assert "payment" in dossier.observed_activity

    def test_render_flags_risk(self, reporter):
        text = reporter.dossier("livechatinc.com").render()
        assert "SUPPLY-CHAIN RISK" in text
        assert "camera" in text

    def test_render_clean_widget_has_no_risk_banner(self, reporter):
        text = reporter.dossier("stripe.com").render()
        assert "SUPPLY-CHAIN RISK" not in text

    def test_riskiest_ranking(self, reporter):
        riskiest = reporter.riskiest(3)
        assert riskiest
        sites = [dossier.site for dossier in riskiest]
        assert "livechatinc.com" in sites
        counts = [d.overpermissioned_websites for d in riskiest]
        assert counts == sorted(counts, reverse=True)

    def test_known_widgets_include_the_big_ones(self, reporter):
        widgets = reporter.known_widgets(min_websites=5)
        assert {"youtube.com", "livechatinc.com"} <= set(widgets)
