"""Tests for the legacy Feature-Policy header grammar."""

from repro.policy.feature_policy import (
    parse_feature_policy_header,
    parse_serialized_policy,
)
from repro.policy.origin import Origin

SELF = Origin.parse("https://example.org")
OTHER = Origin.parse("https://trusted.example")


class TestFeaturePolicyHeader:
    def test_self_keyword(self):
        parsed = parse_feature_policy_header("camera 'self'")
        assert parsed.directives["camera"].self_

    def test_none_keyword(self):
        parsed = parse_feature_policy_header("geolocation 'none'")
        assert parsed.directives["geolocation"].is_empty

    def test_star(self):
        parsed = parse_feature_policy_header("fullscreen *")
        assert parsed.directives["fullscreen"].star

    def test_unquoted_origin(self):
        """Feature-Policy origins are NOT quoted (unlike Permissions-Policy)."""
        parsed = parse_feature_policy_header("camera 'self' https://trusted.example")
        allowlist = parsed.directives["camera"]
        assert allowlist.self_
        assert allowlist.allows(OTHER, self_origin=SELF)

    def test_multiple_directives(self):
        parsed = parse_feature_policy_header(
            "camera 'self'; geolocation 'none'; fullscreen *")
        assert parsed.feature_count == 3

    def test_directive_without_members_defaults_to_self(self):
        parsed = parse_feature_policy_header("camera")
        assert parsed.directives["camera"].self_

    def test_never_raises_on_garbage(self):
        parsed = parse_feature_policy_header(";;;@@@;;;")
        assert parsed.raw == ";;;@@@;;;"

    def test_invalid_tokens_collected(self):
        parsed = parse_feature_policy_header("camera 'self' %%bad%%")
        assert "%%bad%%" in parsed.invalid_tokens

    def test_repeated_feature_merges(self):
        parsed = parse_feature_policy_header("camera 'self'; camera *")
        allowlist = parsed.directives["camera"]
        assert allowlist.self_ and allowlist.star


class TestSerializedGrammar:
    def test_unquoted_keywords_accepted_leniently(self):
        """`allow="camera self"` (missing quotes) appears in the wild; the
        parser accepts it like browsers do."""
        directives = parse_serialized_policy("camera self")
        assert directives[0].allowlist.self_

    def test_none_mixed_with_others_is_ignored(self):
        directives = parse_serialized_policy("camera 'none' 'self'")
        allowlist = directives[0].allowlist
        assert allowlist.self_ and not allowlist.is_empty

    def test_is_explicit_flag(self):
        bare, explicit = parse_serialized_policy("camera; microphone *")
        assert not bare.is_explicit
        assert explicit.is_explicit

    def test_empty_string(self):
        assert parse_serialized_policy("") == []
