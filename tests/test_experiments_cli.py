"""Tests for the experiment drivers and the CLI (small crawl scale)."""

import pytest

from repro.cli import main
from repro.experiments.runner import run_measurement
from repro.experiments.tables import (
    ALL_EXPERIMENTS,
    fig01_instrumentation,
    fig03_support_matrix,
    fig04_header_generator,
    table01_policy_cases,
    table02_registry,
    table11_spec_issue,
)

SCALE = 2500


@pytest.fixture(scope="module")
def ctx():
    return run_measurement(SCALE, workers=2)


class TestCrawlFreeExperiments:
    def test_table01_shape_ok(self):
        assert table01_policy_cases().shape_ok

    def test_table02_shape_ok(self):
        assert table02_registry().shape_ok

    def test_table11_shape_ok(self):
        assert table11_spec_issue().shape_ok

    def test_fig01_shape_ok(self):
        assert fig01_instrumentation().shape_ok

    def test_fig03_shape_ok(self):
        assert fig03_support_matrix().shape_ok

    def test_fig04_shape_ok(self):
        assert fig04_header_generator().shape_ok


class TestCrawlExperiments:
    """At small scale some rankings are noisy; we assert the drivers run
    and the scale-robust ones keep their shape."""

    def test_all_experiments_produce_output(self, ctx):
        for name, fn in ALL_EXPERIMENTS.items():
            result = fn(ctx)
            assert result.rendered, name
            assert result.experiment_id

    @pytest.mark.parametrize("name", [
        "crawl_overview", "table03", "table10", "livechat", "fig02",
        "delegation_directives", "summary",
    ])
    def test_scale_robust_experiments_keep_shape(self, ctx, name):
        assert ALL_EXPERIMENTS[name](ctx).shape_ok, name

    def test_runner_caches(self):
        a = run_measurement(SCALE, workers=2)
        b = run_measurement(SCALE, workers=2)
        assert a is b

    def test_scale_factor(self, ctx):
        assert ctx.scale_factor == pytest.approx(1_000_000 / SCALE)


class TestCli:
    def test_support(self, capsys):
        assert main(["support"]) == 0
        assert "camera" in capsys.readouterr().out

    def test_generate_header(self, capsys):
        assert main(["generate-header", "--preset", "disable-all"]) == 0
        assert "camera=()" in capsys.readouterr().out

    def test_lint_header_clean(self, capsys):
        assert main(["lint-header", "camera=()"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_lint_header_fatal(self, capsys):
        assert main(["lint-header", "camera 'self'"]) == 1
        assert "FATAL" in capsys.readouterr().out

    def test_poc(self, capsys):
        assert main(["poc"]) == 0
        assert "bypass" in capsys.readouterr().out.lower()

    def test_poc_blocked_by_csp(self, capsys):
        assert main(["poc", "--csp", "frame-src 'none'"]) == 1

    def test_crawl_analyze_roundtrip(self, tmp_path, capsys):
        database = str(tmp_path / "c.sqlite")
        assert main(["crawl", "--sites", "300", "--workers", "2",
                     "--database", database]) == 0
        assert main(["analyze", "--database", database]) == 0
        out = capsys.readouterr().out
        assert "paper" in out and "measured" in out

    def test_crawl_resume_and_progress(self, tmp_path, capsys):
        database = str(tmp_path / "resume.sqlite")
        assert main(["crawl", "--sites", "120", "--workers", "2",
                     "--retries", "2", "--progress",
                     "--database", database]) == 0
        first = capsys.readouterr().out
        assert "queue depth" in first and "throughput" in first
        assert main(["crawl", "--sites", "120", "--workers", "2",
                     "--resume", "--database", database]) == 0
        second = capsys.readouterr().out
        assert "120 resumed" in second

    def test_telemetry_subcommand(self, capsys):
        assert main(["telemetry", "--sites", "100", "--workers", "2",
                     "--fault-rate", "0.25", "--crash-rate", "0.05",
                     "--retries", "2"]) == 0
        out = capsys.readouterr().out
        assert "visits      100/100" in out
        assert "retries" in out and "throughput" in out

    def test_experiment_subcommand(self, capsys):
        assert main(["experiment", "table01", "--sites", "300"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_recommend(self, capsys):
        assert main(["recommend", "--sites", "400", "--rank", "1"]) == 0
        assert "suggested header" in capsys.readouterr().out


class TestCliExtensions:
    def test_export_list(self, tmp_path, capsys):
        out = str(tmp_path / "origins.csv")
        assert main(["export-list", "--sites", "50", "--output", out]) == 0
        lines = open(out).read().strip().splitlines()
        assert lines[0] == "rank,origin"
        assert len(lines) == 51
        assert lines[1].startswith("0,https://site-0000000.")

    def test_poc_html(self, tmp_path, capsys):
        out = str(tmp_path / "poc")
        assert main(["poc-html", "--output-dir", out]) == 0
        import os
        assert os.path.exists(os.path.join(out, "poc-data.html"))
        assert os.path.exists(os.path.join(out, "poc-srcdoc.html"))
        markup = open(os.path.join(out, "poc-data.html")).read()
        assert "data:text/html," in markup

    def test_export_registry(self, tmp_path, capsys):
        import json
        out = str(tmp_path / "features.json")
        assert main(["export-registry", "--output", out]) == 0
        data = json.load(open(out))
        names = {row["permission"] for row in data["permissions"]}
        assert {"camera", "browsing-topics"} <= names
        camera = next(row for row in data["permissions"]
                      if row["permission"] == "camera")
        assert camera["powerful"] and camera["policy_controlled"]
        assert camera["support"]["Chromium"]

    def test_widget_report(self, capsys):
        assert main(["widget-report", "--sites", "1500",
                     "--site", "livechatinc.com"]) == 0
        out = capsys.readouterr().out
        assert "livechatinc.com" in out
        assert "SUPPLY-CHAIN RISK" in out


class TestHardeningCli:
    """DESIGN.md §4g subcommands: verify-store, export/import-jsonl."""

    def _crawl(self, tmp_path, capsys):
        database = str(tmp_path / "h.sqlite")
        assert main(["crawl", "--sites", "40", "--workers", "2",
                     "--database", database]) == 0
        capsys.readouterr()
        return database

    def test_verify_store_clean(self, tmp_path, capsys):
        database = self._crawl(tmp_path, capsys)
        assert main(["verify-store", "--database", database]) == 0
        out = capsys.readouterr().out
        assert "verifies clean" in out

    def test_verify_store_corrupt_repair_cycle(self, tmp_path, capsys):
        import sqlite3
        database = self._crawl(tmp_path, capsys)
        conn = sqlite3.connect(database)
        conn.execute("UPDATE frames SET headers = '{x' WHERE rank = 3")
        conn.commit()
        conn.close()
        # Detection fails the command; --repair quarantines and succeeds.
        assert main(["verify-store", "--database", database]) == 1
        assert "decode-error" in capsys.readouterr().out
        assert main(["verify-store", "--database", database,
                     "--repair"]) == 0
        assert "moved to quarantine" in capsys.readouterr().out
        assert main(["verify-store", "--database", database]) == 0
        assert "already quarantined" in capsys.readouterr().out

    def test_verify_store_json(self, tmp_path, capsys):
        import json
        database = self._crawl(tmp_path, capsys)
        assert main(["verify-store", "--database", database,
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] and report["total_rows"] == 40

    def test_jsonl_round_trip_via_cli(self, tmp_path, capsys):
        database = self._crawl(tmp_path, capsys)
        out = str(tmp_path / "v.jsonl")
        second = str(tmp_path / "h2.sqlite")
        assert main(["export-jsonl", "--database", database,
                     "--output", out]) == 0
        assert "wrote 40 visits" in capsys.readouterr().out
        assert main(["import-jsonl", "--input", out,
                     "--database", second]) == 0
        assert "imported 40 visits" in capsys.readouterr().out
        from repro.crawler.storage import CrawlStore
        with CrawlStore(database) as a, CrawlStore(second) as b:
            assert a.load_dataset().visits == b.load_dataset().visits
            assert b.verify().ok

    def test_import_jsonl_skips_malformed_lines(self, tmp_path, capsys):
        from pathlib import Path
        database = self._crawl(tmp_path, capsys)
        out = tmp_path / "v.jsonl"
        assert main(["export-jsonl", "--database", database,
                     "--output", str(out)]) == 0
        capsys.readouterr()
        lines = out.read_text(encoding="utf-8").splitlines()
        lines[4] = "garbage"
        out.write_text("\n".join(lines) + "\n", encoding="utf-8")
        second = str(tmp_path / "h3.sqlite")
        assert main(["import-jsonl", "--input", str(out),
                     "--database", second]) == 0
        printed = capsys.readouterr().out
        assert "imported 39 visits" in printed
        assert "1 malformed line(s) skipped" in printed
