"""Tests for dynamic instrumentation (paper Figure 1)."""

from repro.browser.api import ApiKind
from repro.browser.instrumentation import InstrumentedRuntime, WebAPIRuntime
from repro.browser.scripts import ApiCall, Script
from repro.policy.engine import PolicyFrame


def _runtime(url="https://example.org", header=None, frame=None):
    policy_frame = frame if frame is not None else PolicyFrame.top(url, header=header)
    return InstrumentedRuntime(WebAPIRuntime(policy_frame))


class TestWrapping:
    def test_call_is_recorded_with_args(self):
        runtime = _runtime()
        script = Script(url="https://example.org/app.js", source="",
                        operations=(ApiCall("navigator.permissions.query",
                                            ("camera",)),))
        runtime.execute(script)
        assert len(runtime.records) == 1
        record = runtime.records[0]
        assert record.api == "navigator.permissions.query"
        assert record.args == ("camera",)
        assert record.permissions == ("camera",)
        assert record.kind is ApiKind.STATUS_CHECK

    def test_original_function_still_works(self):
        """Figure 1: the instrumented function continues to work."""
        frame = PolicyFrame.top("https://example.org")
        runtime = WebAPIRuntime(frame)
        before = runtime.call("navigator.getBattery")
        instrumented = InstrumentedRuntime(runtime)
        after = runtime.call("navigator.getBattery")
        assert before["allowed"] == after["allowed"]
        assert len(instrumented.records) == 1

    def test_stacktrace_contains_script_url(self):
        runtime = _runtime()
        script = Script(url="https://tracker.example/t.js", source="",
                        operations=(ApiCall("navigator.getBattery"),))
        runtime.execute(script)
        record = runtime.records[0]
        assert record.stacktrace == ("https://tracker.example/t.js",)
        assert record.calling_script_url == "https://tracker.example/t.js"

    def test_inline_script_has_empty_stack_entry(self):
        """Inline scripts leave no URL in the stack — the paper classifies
        those calls as first-party."""
        runtime = _runtime()
        script = Script(url=None, source="",
                        operations=(ApiCall("navigator.getBattery"),))
        runtime.execute(script)
        assert runtime.records[0].calling_script_url is None

    def test_policy_denial_recorded_but_not_hidden(self):
        """Blocked invocations are still observed (the call happened)."""
        runtime = _runtime(header="camera=()")
        script = Script(url=None, source="", operations=(
            ApiCall("navigator.mediaDevices.getUserMedia", ("camera",)),))
        runtime.execute(script)
        record = runtime.records[0]
        assert not record.allowed

    def test_general_api_returns_allowed_features(self):
        frame = PolicyFrame.top("https://example.org")
        runtime = WebAPIRuntime(frame)
        outcome = runtime.call("document.featurePolicy.allowedFeatures")
        assert "camera" in outcome["result"]

    def test_uninstrumented_endpoint_not_recorded(self):
        """autoplay is outside the Appendix A.4 surface: calls pass through
        without a record — the paper's measurement blind spot."""
        runtime = _runtime()
        script = Script(url=None, source="",
                        operations=(ApiCall("HTMLMediaElement.play"),))
        executed = runtime.execute(script)
        assert executed == 1
        assert runtime.records == []


class TestInteractionGating:
    def _gated_script(self, gate="click"):
        return Script(url=None, source="", operations=(
            ApiCall("navigator.share", ("web-share",),
                    requires_interaction=True, interaction_gate=gate),))

    def test_gated_op_skipped_without_interaction(self):
        runtime = _runtime()
        assert runtime.execute(self._gated_script()) == 0
        assert runtime.records == []

    def test_gated_op_runs_with_interaction(self):
        runtime = _runtime()
        count = runtime.execute(self._gated_script(), interact=True)
        assert count == 1
        assert len(runtime.records) == 1

    def test_login_gate_stays_shut_for_click_interaction(self):
        """Appendix A.3: some functionality stayed inaccessible (accounts
        could not be created)."""
        runtime = _runtime()
        count = runtime.execute(self._gated_script(gate="login"),
                                interact=True,
                                unlocked_gates=frozenset({"click"}))
        assert count == 0

    def test_login_gate_opens_when_granted(self):
        runtime = _runtime()
        count = runtime.execute(self._gated_script(gate="login"),
                                interact=True,
                                unlocked_gates=frozenset({"click", "login"}))
        assert count == 1

    def test_unknown_api_op_skipped(self):
        runtime = _runtime()
        script = Script(url=None, source="",
                        operations=(ApiCall("not.a.real.api"),))
        assert runtime.execute(script) == 0
