"""Tests for the policy service layer (DESIGN.md §4j).

Covers the tentpole service — endpoint round-trips over real sockets,
concurrent-client correctness, deterministic rate-limit open/half-open
behaviour, cache hit/miss semantics (and the never-cache-errors rule),
graceful drain mid-request — plus regression tests for the tool-edge
bugfixes that rode along: generator bucket conflicts, recommender
resilience to hostile deployed configuration, and structured 4xx mapping
for every library error the adapters can surface.
"""

import http.client
import json
import socket
import threading
import time

import pytest

from repro.crawler.records import FrameRecord, SiteVisit
from repro.crawler.storage import CrawlStore
from repro.policy.header import parse_permissions_policy_header
from repro.policy.origin import OriginParseError
from repro.service import (
    ClientRateLimiter,
    PolicyService,
    RateLimitConfig,
    ResponseCache,
    ServiceThread,
    ToolAdapters,
    canonical_request_text,
    request_key,
)
from repro.service.errors import ServiceError, error_from_exception
from repro.tools.header_generator import HeaderGenerator
from repro.tools.recommender import (
    UNPARSEABLE_ALLOW,
    UNPARSEABLE_HEADER,
    PolicyRecommender,
)

UNLIMITED = RateLimitConfig(requests_per_second=100_000.0, burst=100_000)


def _request(address, method, path, payload=None, *, client="test"):
    """One HTTP request; returns (status, parsed JSON body)."""
    host, port = address
    connection = http.client.HTTPConnection(host, port, timeout=10.0)
    try:
        body = None if payload is None else json.dumps(payload)
        connection.request(method, path, body=body,
                           headers={"Content-Type": "application/json",
                                    "X-Client-Id": client})
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


@pytest.fixture(scope="module")
def server():
    with ServiceThread(rate_limit=UNLIMITED) as thread:
        yield thread


class TestEndpoints:
    def test_healthz(self, server):
        status, body = _request(server.address, "GET", "/healthz")
        assert status == 200 and body == {"status": "ok"}

    def test_evaluate_reproduces_table1_cases(self, server):
        # Case 4: camera=(self) at top, allow=camera on a cross-origin
        # iframe — top keeps camera, iframe does not.
        status, body = _request(server.address, "POST", "/evaluate", {
            "requests": [
                {"top_url": "https://a.example",
                 "header": "camera=(self)",
                 "features": ["camera"]},
                {"top_url": "https://a.example",
                 "header": "camera=(self)",
                 "frames": [{"url": "https://b.example",
                             "allow": "camera"}],
                 "features": ["camera"]},
            ]})
        assert status == 200
        top, child = body["results"]
        assert top["decisions"][0]["enabled"] is True
        assert child["decisions"][0]["enabled"] is False
        assert child["frame_origin"] == "https://b.example"

    def test_evaluate_without_features_lists_allowed(self, server):
        status, body = _request(server.address, "POST", "/evaluate", {
            "requests": [{"top_url": "https://a.example",
                          "header": "camera=()"}]})
        assert status == 200
        allowed = body["results"][0]["allowed_features"]
        assert "camera" not in allowed and "fullscreen" in allowed

    def test_generate_header_preset_and_custom(self, server):
        status, body = _request(server.address, "POST", "/generate-header",
                                {"preset": "disable-all"})
        assert status == 200 and body["complete"]
        parse_permissions_policy_header(body["header"])

        status, body = _request(server.address, "POST", "/generate-header", {
            "self_only": ["camera"],
            "allow_origins": {"geolocation": ["https://maps.example"]},
            "disable_rest": False})
        assert status == 200
        parsed = parse_permissions_policy_header(body["header"])
        assert set(parsed.directives) == {"camera", "geolocation"}

    def test_recommend_synthetic(self, server):
        status, body = _request(server.address, "POST", "/recommend",
                                {"rank": 3, "sites": 200, "seed": 2024})
        assert status == 200
        assert body["url"].startswith("https://site-")
        parse_permissions_policy_header(body["suggested_header"])

    def test_recommend_stored_visit(self, server, tmp_path):
        store_path = tmp_path / "crawl.sqlite"
        store = CrawlStore(store_path)
        store.save_visit(SiteVisit(
            rank=7, requested_url="https://stored.example",
            final_url="https://stored.example", success=True,
            frames=[FrameRecord(
                frame_id=0, url="https://stored.example",
                origin="https://stored.example", site="stored.example",
                parent_id=None, depth=0, is_local=False,
                headers={}, iframe_attributes=None)]))
        store.close()
        status, body = _request(server.address, "POST", "/recommend",
                                {"database": str(store_path), "rank": 7})
        assert status == 200
        assert body["url"] == "https://stored.example"
        status, body = _request(server.address, "POST", "/recommend",
                                {"database": str(store_path), "rank": 99})
        assert status == 404

    def test_registry_full_and_filtered(self, server):
        status, body = _request(server.address, "GET", "/registry")
        assert status == 200
        names = {row["permission"] for row in body["permissions"]}
        assert {"camera", "browsing-topics"} <= names
        assert body["summary"]["permissions"] == len(body["permissions"])

        status, body = _request(server.address, "GET",
                                "/registry?permission=camera")
        assert status == 200 and len(body["permissions"]) == 1

        status, body = _request(server.address, "GET",
                                "/registry?permission=warp-drive")
        assert status == 404 and body["error"]["token"] == "warp-drive"


class TestErrorMapping:
    def test_unknown_permission_names_token(self, server):
        status, body = _request(server.address, "POST", "/evaluate", {
            "requests": [{"top_url": "https://a.example",
                          "features": ["warp-drive"]}]})
        assert status == 400
        assert body["error"]["code"] == "unknown-permission"
        assert body["error"]["token"] == "warp-drive"

    def test_unknown_preset_is_400(self, server):
        status, body = _request(server.address, "POST", "/generate-header",
                                {"preset": "nonsense"})
        assert status == 400 and body["error"]["token"] == "nonsense"

    def test_invalid_origin_is_400(self, server):
        status, body = _request(server.address, "POST", "/generate-header", {
            "allow_origins": {"camera": ["not a url at all"]}})
        assert status == 400
        assert body["error"]["code"] in {"invalid-origin", "invalid-request"}

    def test_unknown_route_and_method(self, server):
        status, body = _request(server.address, "GET", "/nope")
        assert status == 404
        status, body = _request(server.address, "GET", "/evaluate")
        assert status == 405

    def test_invalid_json_body(self, server):
        host, port = server.address
        connection = http.client.HTTPConnection(host, port, timeout=10.0)
        connection.request("POST", "/evaluate", body="{not json",
                           headers={"X-Client-Id": "test"})
        response = connection.getresponse()
        body = json.loads(response.read())
        connection.close()
        assert response.status == 400
        assert body["error"]["code"] == "invalid-json"

    def test_oversized_body_is_413(self):
        service = PolicyService(rate_limit=UNLIMITED, max_body_bytes=256)
        with ServiceThread(service) as thread:
            status, body = _request(
                thread.address, "POST", "/evaluate",
                {"requests": [], "padding": "x" * 1024})
            assert status == 413
            assert body["error"]["code"] == "payload-too-large"

    def test_oversized_headers_are_431(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: x\r\n"
                         + b"X-Junk: " + b"j" * (20 * 1024) + b"\r\n\r\n")
            response = sock.recv(65536)
        assert b"431" in response.split(b"\r\n", 1)[0]

    def test_transfer_encoding_is_501(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(b"POST /evaluate HTTP/1.1\r\nHost: x\r\n"
                         b"Transfer-Encoding: chunked\r\n\r\n")
            response = sock.recv(65536)
        assert b"501" in response.split(b"\r\n", 1)[0]

    def test_error_from_exception_maps_origin_parse_error(self):
        error = error_from_exception(OriginParseError("bad origin 'x'"))
        assert error.status == 400 and error.code == "invalid-origin"
        error = error_from_exception(RuntimeError("secret internals"))
        assert error.status == 500
        assert "secret" not in error.to_json()["error"]["message"]


class TestCache:
    def test_canonical_text_normalizes_policy_spelling(self):
        a = canonical_request_text("POST", "/evaluate", {
            "header": "camera=(self),   microphone=()"})
        b = canonical_request_text("POST", "/evaluate", {
            "header": "camera=(self), microphone=()"})
        assert a == b
        assert request_key("POST", "/evaluate",
                           {"header": "camera=(self),   microphone=()"}) \
            == request_key("POST", "/evaluate",
                           {"header": "camera=(self), microphone=()"})

    def test_canonical_text_normalizes_allow_spelling(self):
        a = canonical_request_text("POST", "/evaluate", {
            "frames": [{"allow": "camera;  geolocation"}]})
        b = canonical_request_text("POST", "/evaluate", {
            "frames": [{"allow": "camera; geolocation"}]})
        assert a == b

    def test_unparseable_header_keeps_raw_text(self):
        hostile = 'camera=(self "ht!tp://///'
        text = canonical_request_text("POST", "/evaluate",
                                      {"header": hostile})
        assert json.loads(text)["payload"]["header"] == hostile

    def test_lru_eviction_and_stats(self):
        cache = ResponseCache(max_entries=2)
        cache.put("a", b"1")
        cache.put("b", b"2")
        assert cache.get("a") == b"1"
        cache.put("c", b"3")          # evicts "b" (least recent)
        assert cache.get("b") is None
        assert cache.get("a") == b"1" and cache.get("c") == b"3"
        assert cache.stats()["hits"] == 3 and cache.stats()["misses"] == 1

    def test_cache_hit_on_cosmetic_variants(self):
        service = PolicyService(rate_limit=UNLIMITED)
        with ServiceThread(service) as thread:
            payload_a = {"requests": [{"top_url": "https://a.example",
                                       "header": "camera=(self),  fullscreen=()",
                                       "features": ["camera"]}]}
            payload_b = {"requests": [{"top_url": "https://a.example",
                                       "header": "camera=(self), fullscreen=()",
                                       "features": ["camera"]}]}
            status_a, body_a = _request(thread.address, "POST", "/evaluate",
                                        payload_a)
            status_b, body_b = _request(thread.address, "POST", "/evaluate",
                                        payload_b)
        assert status_a == status_b == 200 and body_a == body_b
        assert service.cache.hits == 1 and service.cache.misses == 1

    def test_byte_identical_responses_for_identical_canonical_requests(self):
        service = PolicyService(rate_limit=UNLIMITED)

        def raw(address, payload):
            host, port = address
            body = json.dumps(payload).encode()
            with socket.create_connection((host, port), timeout=10.0) as s:
                s.sendall(b"POST /evaluate HTTP/1.1\r\nHost: x\r\n"
                          b"X-Client-Id: byteid\r\nConnection: close\r\n"
                          b"Content-Length: " + str(len(body)).encode()
                          + b"\r\n\r\n" + body)
                data = b""
                while chunk := s.recv(65536):
                    data += chunk
            return data

        with ServiceThread(service) as thread:
            first = raw(thread.address, {"requests": [{
                "top_url": "https://a.example",
                "header": "camera=(self),   microphone=()"}]})
            second = raw(thread.address, {"requests": [{
                "top_url": "https://a.example",
                "header": "camera=(self), microphone=()"}]})
        assert first == second
        assert service.cache.hits == 1

    def test_error_responses_are_never_cached(self):
        service = PolicyService(rate_limit=UNLIMITED)
        bad = {"requests": [{"top_url": "https://a.example",
                             "features": ["warp-drive"]}]}
        with ServiceThread(service) as thread:
            for _ in range(3):
                status, body = _request(thread.address, "POST",
                                        "/evaluate", bad)
                assert status == 400
        assert len(service.cache) == 0
        assert service.cache.hits == 0 and service.cache.misses == 3
        assert service.error_count == 3


class TestRateLimiting:
    def test_bucket_then_breaker_open_then_half_open_probe(self):
        # requests_per_second=0 never refills: pure call-sequence logic.
        service = PolicyService(rate_limit=RateLimitConfig(
            requests_per_second=0.0, burst=2,
            failure_threshold=2, cooldown_attempts=2))
        with ServiceThread(service) as thread:
            statuses = [
                _request(thread.address, "GET", "/registry",
                         client="hammer")[0]
                for _ in range(6)]
            # 2 within burst; 2 over-budget failures open the circuit;
            # short-circuit; then the scheduled half-open probe also finds
            # an empty bucket and re-opens.
            assert statuses == [200, 200, 429, 429, 429, 429]
            assert service.limiter.state("hammer") == "open"
            # Other clients are unaffected by the hammering client.
            status, _ = _request(thread.address, "GET", "/registry",
                                 client="polite")
            assert status == 200
            # Operational endpoints bypass the limiter entirely.
            status, _ = _request(thread.address, "GET", "/healthz",
                                 client="hammer")
            assert status == 200
        assert service.rate_limited_count == 4

    def test_half_open_probe_closes_circuit_after_refill(self):
        clock = [0.0]
        limiter = ClientRateLimiter(
            RateLimitConfig(requests_per_second=1.0, burst=1,
                            failure_threshold=2, cooldown_attempts=2),
            clock=lambda: clock[0])
        assert limiter.admit("c")                  # burst token
        assert not limiter.admit("c")              # over budget (1 failure)
        assert not limiter.admit("c")              # opens the circuit
        assert limiter.state("c") == "open"
        clock[0] = 10.0                            # bucket refills
        assert not limiter.admit("c")              # rejected: not probe yet
        assert limiter.admit("c")                  # half-open probe, token ok
        assert limiter.state("c") == "closed"
        clock[0] = 11.0                            # one more token drips in
        assert limiter.admit("c")                  # closed and refilled

    def test_deterministic_zero_rate_sequence(self):
        limiter = ClientRateLimiter(RateLimitConfig(
            requests_per_second=0.0, burst=3,
            failure_threshold=3, cooldown_attempts=2))
        decisions = [limiter.admit("k") for _ in range(12)]
        repeat = ClientRateLimiter(RateLimitConfig(
            requests_per_second=0.0, burst=3,
            failure_threshold=3, cooldown_attempts=2))
        assert decisions == [repeat.admit("k") for _ in range(12)]

    def test_max_clients_bounds_tracked_state(self):
        clock = [0.0]
        limiter = ClientRateLimiter(
            RateLimitConfig(requests_per_second=1.0, burst=2,
                            max_clients=5),
            clock=lambda: clock[0])
        for index in range(50):
            clock[0] = float(index)
            assert limiter.admit(f"client-{index}")
        stats = limiter.stats()
        assert stats["tracked_clients"] == 5
        assert stats["evicted_clients"] == 45
        # Survivors are the most recently refilled clients.
        assert set(limiter._refilled_at) == {
            f"client-{index}" for index in range(45, 50)}
        assert set(limiter._tokens) == set(limiter._refilled_at)

    def test_eviction_drops_least_recently_refilled_first(self):
        clock = [0.0]
        limiter = ClientRateLimiter(
            RateLimitConfig(requests_per_second=0.0, burst=4,
                            max_clients=2),
            clock=lambda: clock[0])
        clock[0] = 1.0
        limiter.admit("old")
        clock[0] = 2.0
        limiter.admit("mid")
        clock[0] = 3.0
        limiter.admit("old")       # refreshes "old": "mid" is now oldest
        clock[0] = 4.0
        limiter.admit("new")       # cap hit — evicts "mid", not "old"
        assert set(limiter._refilled_at) == {"old", "new"}
        assert limiter.evicted == 1
        # The active client is never its own victim.
        clock[0] = 5.0
        limiter.admit("newer")
        assert "newer" in limiter._refilled_at

    def test_eviction_forgets_the_breaker_circuit(self):
        limiter = ClientRateLimiter(RateLimitConfig(
            requests_per_second=0.0, burst=1,
            failure_threshold=1, cooldown_attempts=2, max_clients=1))
        limiter.admit("hammer")
        assert not limiter.admit("hammer")     # opens the circuit
        assert limiter.state("hammer") == "open"
        limiter.admit("other")                 # evicts "hammer" entirely
        # The evicted client restarts closed with a full bucket: no
        # half-open probe schedule survives eviction.
        assert limiter.state("hammer") == "closed"
        assert limiter.admit("hammer")
        assert limiter.stats()["open_clients"] == []

    def test_max_clients_validation(self):
        with pytest.raises(ValueError, match="max_clients"):
            RateLimitConfig(max_clients=0)


class TestConcurrency:
    def test_responses_independent_of_interleaving(self):
        payloads = [{"requests": [{
            "top_url": f"https://site-{i}.example",
            "header": f"camera=(self \"https://w-{i}.example\")",
            "frames": [{"url": f"https://w-{i % 3}.example",
                        "allow": "camera"}],
            "features": ["camera", "microphone"],
        }]} for i in range(12)]

        # Expected answers from a quiet, serial service.
        with ServiceThread(rate_limit=UNLIMITED) as thread:
            expected = [_request(thread.address, "POST", "/evaluate", p)[1]
                        for p in payloads]

        service = PolicyService(rate_limit=UNLIMITED)
        results: dict = {}
        errors: list = []
        with ServiceThread(service) as thread:
            def worker(worker_id):
                try:
                    for index, payload in enumerate(payloads):
                        status, body = _request(
                            thread.address, "POST", "/evaluate", payload,
                            client=f"w{worker_id}")
                        assert status == 200
                        results[(worker_id, index)] = body
                except Exception as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(n,))
                       for n in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert not errors
        for (worker_id, index), body in results.items():
            assert body == expected[index], (worker_id, index)
        # 6 workers x 12 payloads, only 12 distinct canonical requests.
        assert service.cache.hits >= 5 * 12


class TestGracefulDrain:
    def test_drain_finishes_in_flight_request(self):
        service = PolicyService(rate_limit=UNLIMITED)
        service.add_route("GET", "/slow",
                          lambda req: (time.sleep(0.3), {"ok": True})[1],
                          cacheable=False, limited=False)
        with ServiceThread(service) as thread:
            host, port = thread.address
            outcome: dict = {}

            def slow_call():
                connection = http.client.HTTPConnection(host, port,
                                                        timeout=10.0)
                connection.request("GET", "/slow")
                response = connection.getresponse()
                outcome["status"] = response.status
                outcome["body"] = json.loads(response.read())
                connection.close()

            caller = threading.Thread(target=slow_call)
            caller.start()
            time.sleep(0.1)            # request is mid-handler
            service.request_drain()
            caller.join(timeout=10)
            # The in-flight request completed despite the drain...
            assert outcome == {"status": 200, "body": {"ok": True}}
            # ...and the listener no longer accepts new connections.
            with pytest.raises(OSError):
                probe = socket.create_connection((host, port), timeout=1.0)
                probe.sendall(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                if not probe.recv(1024):
                    probe.close()
                    raise ConnectionError("listener drained")
                probe.close()

    def test_drain_closes_idle_keepalive_connections(self):
        service = PolicyService(rate_limit=UNLIMITED)
        with ServiceThread(service) as thread:
            host, port = thread.address
            connection = http.client.HTTPConnection(host, port, timeout=10.0)
            connection.request("GET", "/healthz")
            assert connection.getresponse().read() == b'{"status":"ok"}\n'
            service.request_drain()
            deadline = time.time() + 5.0
            closed = False
            while time.time() < deadline:
                try:
                    connection.request("GET", "/healthz")
                    connection.getresponse().read()
                except (ConnectionError, http.client.HTTPException, OSError):
                    closed = True
                    break
                time.sleep(0.05)
            connection.close()
            assert closed, "idle keep-alive connection survived the drain"


class TestGeneratorBugfixes:
    def test_bucket_conflict_disable_vs_self_only(self):
        with pytest.raises(ValueError, match="camera.*disable.*self_only"):
            HeaderGenerator().generate_custom(disable=("camera",),
                                              self_only=("camera",))

    def test_bucket_conflict_with_allowlist(self):
        with pytest.raises(ValueError, match="camera"):
            HeaderGenerator().generate_custom(
                self_only=("camera",),
                allow_origins={"camera": ("https://x.example",)})

    def test_duplicate_within_one_bucket(self):
        with pytest.raises(ValueError, match="twice"):
            HeaderGenerator().generate_custom(
                disable=("camera", "camera"))

    def test_empty_directive_set_round_trips(self):
        header = HeaderGenerator().generate_custom(disable_rest=False)
        assert header == ""
        assert parse_permissions_policy_header(header).directives == {}

    def test_disjoint_buckets_still_work(self):
        header = HeaderGenerator().generate_custom(
            disable=("microphone",), self_only=("camera",),
            allow_origins={"geolocation": ("https://maps.example",)},
            disable_rest=False)
        parsed = parse_permissions_policy_header(header)
        assert set(parsed.directives) == {"camera", "microphone",
                                          "geolocation"}


class _NoFetch:
    def fetch(self, url):
        raise AssertionError("must not fetch")


def _visit_with(header=None, allow=None):
    frames = [FrameRecord(
        frame_id=0, url="https://victim.example",
        origin="https://victim.example", site="victim.example",
        parent_id=None, depth=0, is_local=False,
        headers=({"permissions-policy": header} if header else {}),
        iframe_attributes=None)]
    if allow is not None:
        frames.append(FrameRecord(
            frame_id=1, url="https://widget.example/w",
            origin="https://widget.example", site="widget.example",
            parent_id=0, depth=1, is_local=False, headers={},
            iframe_attributes={"src": "https://widget.example/w",
                               "allow": allow}))
    return SiteVisit(rank=0, requested_url="https://victim.example",
                     final_url="https://victim.example", success=True,
                     frames=frames)


class TestRecommenderBugfixes:
    def test_hostile_deployed_header_becomes_over_grant(self):
        hostile = 'camera=(self "ht!tp://///", microphone=@@@'
        with pytest.raises(Exception):
            parse_permissions_policy_header(hostile)
        recommendation = PolicyRecommender(
            _NoFetch(), interact=False).recommend_from_visit(
                _visit_with(header=hostile))
        assert UNPARSEABLE_HEADER in recommendation.header_over_grants
        assert recommendation.is_over_permissioned

    def test_parseable_broad_header_still_diffed(self):
        recommendation = PolicyRecommender(
            _NoFetch(), interact=False).recommend_from_visit(
                _visit_with(header="camera=*, microphone=(self)"))
        assert "camera" in recommendation.header_over_grants
        assert UNPARSEABLE_HEADER not in recommendation.header_over_grants

    def test_allow_parser_crash_falls_back_to_lenient(self, monkeypatch):
        # Strict parse_allow_attribute never raises on str input today
        # (frozen in test_hostile.py); this guards the defensive path the
        # service relies on if that contract ever regresses.
        import repro.tools.recommender as module

        real = module.parse_allow_attribute

        def fragile(raw, *, mode="strict"):
            if mode == "strict":
                raise OriginParseError(f"cannot parse origin in {raw!r}")
            return real(raw, mode=mode)

        monkeypatch.setattr(module, "parse_allow_attribute", fragile)
        recommendation = PolicyRecommender(
            _NoFetch(), interact=False).recommend_from_visit(
                _visit_with(allow="camera; fullscreen"))
        suggestion = recommendation.delegation_suggestions[0]
        assert UNPARSEABLE_ALLOW in suggestion.over_granted
        assert recommendation.is_over_permissioned


class TestAdapters:
    def test_batch_cap_enforced(self):
        adapters = ToolAdapters()
        with pytest.raises(ServiceError) as info:
            adapters.evaluate({"requests": [
                {"top_url": "https://a.example"}] * 300})
        assert info.value.status == 400

    def test_missing_field_names_the_field(self):
        adapters = ToolAdapters()
        with pytest.raises(ServiceError) as info:
            adapters.evaluate({"requests": [{}]})
        assert info.value.token == "top_url"
