"""Tests for the RFC 8941 structured-field parser subset."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.policy.structured import (
    InnerList,
    Item,
    StructuredFieldError,
    Token,
    parse_dictionary,
    parse_dictionary_items,
    serialize_bare_item,
)


class TestDictionaryParsing:
    def test_empty_value(self):
        assert parse_dictionary("") == {}
        assert parse_dictionary("   ") == {}

    def test_single_token_member(self):
        members = parse_dictionary("camera=self")
        assert members["camera"] == Item(Token("self"))

    def test_star_token(self):
        members = parse_dictionary("fullscreen=*")
        assert members["fullscreen"].value == Token("*")

    def test_empty_inner_list(self):
        members = parse_dictionary("camera=()")
        assert members["camera"] == InnerList(())

    def test_inner_list_with_token_and_string(self):
        members = parse_dictionary('camera=(self "https://a.com")')
        inner = members["camera"]
        assert isinstance(inner, InnerList)
        assert inner.items[0].value == Token("self")
        assert inner.items[1].value == "https://a.com"

    def test_multiple_members(self):
        members = parse_dictionary("camera=(), geolocation=(self), usb=*")
        assert set(members) == {"camera", "geolocation", "usb"}

    def test_bare_key_is_boolean_true(self):
        members = parse_dictionary("camera")
        assert members["camera"] == Item(True)

    def test_duplicate_key_last_wins(self):
        members = parse_dictionary("a=1, a=2")
        assert members["a"].value == 2

    def test_duplicate_keys_preserved_by_items_parser(self):
        items = parse_dictionary_items("a=1, a=2")
        assert [key for key, _ in items] == ["a", "a"]

    def test_whitespace_tolerated_around_commas(self):
        members = parse_dictionary("a=1 ,\tb=2")
        assert set(members) == {"a", "b"}


class TestItems:
    def test_integer(self):
        assert parse_dictionary("n=42")["n"].value == 42

    def test_negative_integer(self):
        assert parse_dictionary("n=-7")["n"].value == -7

    def test_decimal(self):
        assert parse_dictionary("n=1.25")["n"].value == pytest.approx(1.25)

    def test_boolean(self):
        assert parse_dictionary("t=?1")["t"].value is True
        assert parse_dictionary("f=?0")["f"].value is False

    def test_string_with_escapes(self):
        members = parse_dictionary(r'a="he said \"hi\" \\ ok"')
        assert members["a"].value == 'he said "hi" \\ ok'

    def test_token_with_url_characters(self):
        """Unquoted URLs parse as tokens — the linter flags them later."""
        members = parse_dictionary("camera=(https://a.com)")
        inner = members["camera"]
        assert inner.items[0].value == Token("https://a.com")

    def test_parameters_on_item(self):
        members = parse_dictionary("a=1;q=0.5;x")
        assert members["a"].params == {"q": pytest.approx(0.5), "x": True}

    def test_parameters_on_inner_list(self):
        members = parse_dictionary("a=(1 2);total=3")
        assert members["a"].params == {"total": 3}


class TestSyntaxErrors:
    """Every one of these must fail the WHOLE field (RFC 8941 rule) —
    the mechanism behind the paper's dropped-header misconfigurations."""

    @pytest.mark.parametrize("bad", [
        "camera=(),",            # trailing comma (common paper finding)
        "camera=(self",          # unterminated inner list
        'camera=("unterminated', # unterminated string
        "camera=(self)x",        # trailing junk
        "Camera=()",             # uppercase key start
        "camera==()",            # double equals
        "camera=() geolocation=()",  # missing comma
        "camera=(self,self)",    # comma inside inner list
        "=()",                   # missing key
        "camera=?2",             # invalid boolean
        "camera=:blob:",         # byte sequence not allowed here
        'camera=("\\n")',        # invalid escape
        "camera=1.2345",         # too many decimal digits
        "n=1234567890123456",    # integer too long
    ])
    def test_invalid_field_raises(self, bad):
        with pytest.raises(StructuredFieldError):
            parse_dictionary(bad)

    def test_error_carries_position(self):
        with pytest.raises(StructuredFieldError) as excinfo:
            parse_dictionary("camera=(),")
        assert excinfo.value.position >= 0


class TestSerialization:
    def test_serialize_token(self):
        assert serialize_bare_item(Token("self")) == "self"

    def test_serialize_string_escapes(self):
        assert serialize_bare_item('a"b\\c') == '"a\\"b\\\\c"'

    def test_serialize_booleans(self):
        assert serialize_bare_item(True) == "?1"
        assert serialize_bare_item(False) == "?0"

    def test_serialize_numbers(self):
        assert serialize_bare_item(42) == "42"
        assert serialize_bare_item(1.5) == "1.5"


class TestParserRobustness:
    @given(st.text(max_size=64))
    def test_parser_never_hangs_or_crashes_unexpectedly(self, text):
        """On arbitrary input the parser either returns a dict or raises
        StructuredFieldError — nothing else."""
        try:
            result = parse_dictionary(text)
        except StructuredFieldError:
            return
        assert isinstance(result, dict)

    @given(st.lists(
        st.tuples(
            st.from_regex(r"[a-z][a-z0-9_-]{0,10}", fullmatch=True),
            st.sampled_from(["()", "(self)", "*", '(self "https://x.org")']),
        ),
        min_size=1, max_size=8, unique_by=lambda kv: kv[0]))
    def test_wellformed_dictionaries_always_parse(self, pairs):
        text = ", ".join(f"{k}={v}" for k, v in pairs)
        members = parse_dictionary(text)
        assert set(members) == {k for k, _ in pairs}
