"""Tests for the extension analyses: proposals, fingerprinting, clusters."""

import pytest

from repro.analysis.categories import (
    DelegationPurpose,
    classify_delegation_signature,
    purpose_clusters,
)
from repro.analysis.fingerprinting import (
    distinguishing_features,
    feature_list_for,
    fingerprint_surface,
)
from repro.analysis.proposals import (
    evaluate_default_disallow_all,
    local_scheme_attack_surface,
)
from repro.registry.browsers import CHROMIUM, FIREFOX
from repro.registry.support import default_support_matrix
from tests.test_analysis import make_call, make_frame, make_visit


class TestPurposeClassification:
    @pytest.mark.parametrize("features,expected", [
        (("attribution-reporting", "run-ad-auction"), DelegationPurpose.ADS),
        (("autoplay", "encrypted-media", "picture-in-picture"),
         DelegationPurpose.MULTIMEDIA),
        (("camera", "microphone", "display-capture"),
         DelegationPurpose.CUSTOMER_SUPPORT),
        (("payment",), DelegationPurpose.PAYMENT),
        (("identity-credentials-get",), DelegationPurpose.SESSION),
        (("cross-origin-isolated",), DelegationPurpose.OTHER),
        ((), DelegationPurpose.OTHER),
    ])
    def test_clean_signatures(self, features, expected):
        assert classify_delegation_signature(features) is expected

    def test_wixapps_style_template_is_multi_purpose(self):
        """The paper's WixApps example: autoplay + camera + microphone +
        geolocation + vr spans categories → template widget."""
        purpose = classify_delegation_signature(
            ("autoplay", "camera", "microphone", "geolocation", "vr"))
        assert purpose is DelegationPurpose.MULTI_PURPOSE

    def test_livechat_template_stays_customer_support(self):
        """Camera/microphone core plus multimedia chrome — the paper files
        LiveChat under customer support, not multi-purpose."""
        purpose = classify_delegation_signature(
            ("clipboard-read", "clipboard-write", "autoplay", "microphone",
             "camera", "display-capture", "picture-in-picture",
             "fullscreen"))
        assert purpose is DelegationPurpose.CUSTOMER_SUPPORT

    def test_clusters_on_synthetic_visits(self):
        visits = []
        for rank, (site, allow) in enumerate([
                ("ads-a.example", "attribution-reporting; run-ad-auction"),
                ("ads-a.example", "attribution-reporting; run-ad-auction"),
                ("chat-b.example", "camera; microphone"),
                ("chat-b.example", "camera; microphone"),
                ("pay-c.example", "payment"),
                ("pay-c.example", "payment")]):
            frames = [make_frame(0, f"https://top{rank}.com"),
                      make_frame(1, f"https://{site}/w", parent=0, depth=1,
                                 allow=allow)]
            visits.append(make_visit(rank, frames))
        clusters = {cluster.purpose: cluster
                    for cluster in purpose_clusters(visits)}
        assert clusters[DelegationPurpose.ADS].sites[0][0] == "ads-a.example"
        assert clusters[DelegationPurpose.CUSTOMER_SUPPORT].sites[0][0] \
            == "chat-b.example"
        assert clusters[DelegationPurpose.PAYMENT].sites[0][0] \
            == "pay-c.example"

    def test_min_websites_filters_noise(self):
        frames = [make_frame(0, "https://top.com"),
                  make_frame(1, "https://oneoff.example/w", parent=0, depth=1,
                             allow="camera")]
        clusters = purpose_clusters([make_visit(0, frames)], min_websites=2)
        assert clusters == []


class TestDenyAllProposal:
    def _visit(self, header, used_permission=None):
        frames = [make_frame(0, "https://a.com",
                             headers={"Permissions-Policy": header})]
        calls = []
        if used_permission:
            calls.append(make_call(0, "x", "invoke", [used_permission]))
        return make_visit(0, frames, calls)

    def test_site_relying_on_defaults_breaks(self):
        report = evaluate_default_disallow_all(
            [self._visit("camera=()", used_permission="geolocation")])
        assert report.header_sites == 1
        assert report.sites_breaking == 1
        assert report.broken_permissions["geolocation"] == 1

    def test_declared_usage_does_not_break(self):
        report = evaluate_default_disallow_all(
            [self._visit("geolocation=(self)",
                         used_permission="geolocation")])
        assert report.sites_breaking == 0

    def test_non_policy_controlled_usage_ignored(self):
        report = evaluate_default_disallow_all(
            [self._visit("camera=()", used_permission="notifications")])
        assert report.sites_breaking == 0

    def test_sites_without_header_ignored(self):
        frames = [make_frame(0, "https://a.com")]
        report = evaluate_default_disallow_all([make_visit(0, frames)])
        assert report.header_sites == 0
        assert report.breaking_share == 0.0


class TestAttackSurface:
    def _visit(self, header, csp=None):
        headers = {"Permissions-Policy": header}
        if csp:
            headers["Content-Security-Policy"] = csp
        return make_visit(0, [make_frame(0, "https://a.com",
                                         headers=headers)])

    def test_self_only_powerful_without_csp_is_exposed(self):
        report = local_scheme_attack_surface([self._visit("camera=(self)")])
        assert report.sites_with_self_only_powerful == 1
        assert report.exposed_sites == 1
        assert report.exposed_permissions["camera"] == 1

    def test_frame_src_csp_protects(self):
        report = local_scheme_attack_surface(
            [self._visit("camera=(self)", csp="frame-src 'self'")])
        assert report.sites_with_self_only_powerful == 1
        assert report.exposed_sites == 0
        assert report.protected_by_csp == 1

    def test_script_src_only_csp_does_not_protect(self):
        """The paper's exact precondition."""
        report = local_scheme_attack_surface(
            [self._visit("camera=(self)", csp="script-src 'self'")])
        assert report.exposed_sites == 1

    def test_disabled_feature_is_not_exposed(self):
        report = local_scheme_attack_surface([self._visit("camera=()")])
        assert report.sites_with_self_only_powerful == 0

    def test_wildcard_grant_has_nothing_to_bypass(self):
        report = local_scheme_attack_surface([self._visit("camera=*")])
        assert report.sites_with_self_only_powerful == 0

    def test_non_powerful_self_directive_not_counted(self):
        report = local_scheme_attack_surface([self._visit("gamepad=(self)")])
        assert report.sites_with_self_only_powerful == 0


class TestFingerprinting:
    def test_surface_distinguishes_engines(self):
        report = fingerprint_surface()
        assert report.distinct_lists > 5
        assert 0.5 < report.distinguishability() <= 1.0
        assert 0 < report.entropy_bits <= report.max_entropy_bits

    def test_feature_lists_differ_between_browsers(self):
        matrix = default_support_matrix()
        chromium = matrix.latest_release(CHROMIUM)
        firefox = matrix.latest_release(FIREFOX)
        assert feature_list_for(matrix, chromium) \
            != feature_list_for(matrix, firefox)

    def test_distinguishing_features_identifies_topics(self):
        """Topics ships on Chromium only — a perfect engine discriminator."""
        matrix = default_support_matrix()
        diff = distinguishing_features(matrix,
                                       matrix.latest_release(CHROMIUM),
                                       matrix.latest_release(FIREFOX))
        assert "browsing-topics" in diff

    def test_version_level_distinguishability_within_chromium(self):
        """Even two Chromium versions differ once a feature shipped between
        them — the paper's 'even across versions' claim."""
        matrix = default_support_matrix()
        releases = [r for r in matrix.releases if r.browser == CHROMIUM]
        old = min(releases, key=lambda r: r.major_version)
        new = max(releases, key=lambda r: r.major_version)
        assert distinguishing_features(matrix, old, new)

    def test_entropy_respects_weights(self):
        matrix = default_support_matrix()
        heavy = {release: (1000.0 if release.browser == CHROMIUM
                           and release.major_version == 127 else 0.001)
                 for release in matrix.releases}
        skewed = fingerprint_surface(matrix, weights=heavy)
        uniform = fingerprint_surface(matrix)
        assert skewed.entropy_bits < uniform.entropy_bits
