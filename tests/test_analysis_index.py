"""Differential and regression tests for the shared analysis index.

The index rewrite (``repro.analysis.index``) must be observably invisible:
every analysis built on a :class:`DatasetIndex` has to produce the exact
numbers the pre-index implementations produced.  The pre-index aggregation
loops are preserved verbatim in :mod:`repro.analysis.legacy`, and these
tests compare the two pipelines field by field over full synthetic crawls
at several seeds — plus regression tests for the parser interning layer
and the rank-bucket boundary bug fixed in the same change.
"""

import dataclasses

import pytest

from repro.analysis.index import DatasetIndex, as_index
from repro.analysis.legacy import (
    LegacyDelegationAnalysis,
    LegacyHeaderAnalysis,
    LegacyOverPermissionAnalysis,
    LegacyUsageAnalysis,
    summarize_legacy,
)
from repro.analysis.ranks import DEFAULT_BUCKETS, RankBucketAnalysis
from repro.analysis.summary import summarize
from repro.analysis.usage import UsageAnalysis
from repro.crawler.pool import CrawlerPool
from repro.policy.allow_attr import parse_allow_attribute
from repro.policy.header import HeaderParseError, parse_permissions_policy_header
from repro.policy.memo import clear_parser_caches, parser_caches_disabled
from repro.synthweb.generator import SyntheticWeb
from tests.test_analysis import make_call, make_frame, make_visit


def crawl(site_count=250, seed=1):
    web = SyntheticWeb(site_count, seed=seed)
    return CrawlerPool(web, workers=1, backend="serial").run()


class TestIndexedVsLegacy:
    """The indexed pipeline must be field-identical to the legacy one."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_summaries_field_identical(self, seed):
        dataset = crawl(seed=seed)
        with parser_caches_disabled():
            legacy = summarize_legacy(dataset)
        indexed = summarize(dataset, parallel=False)
        for f in dataclasses.fields(type(indexed)):
            assert getattr(indexed, f.name) == getattr(legacy, f.name), \
                f"field {f.name} diverged at seed {seed}"

    def test_parallel_identical_to_serial(self):
        dataset = crawl(seed=2)
        serial = summarize(dataset, parallel=False)
        parallel = summarize(dataset, parallel=True)
        assert serial == parallel

    def test_shared_index_identical_to_fresh(self):
        dataset = crawl(seed=3)
        index = DatasetIndex(dataset)
        assert summarize(dataset, index=index) == summarize(dataset)

    def test_per_analysis_aggregates_match(self):
        dataset = crawl(seed=1)
        index = DatasetIndex(dataset)
        visits = list(dataset.successful())

        usage = UsageAnalysis(index)
        legacy_usage = LegacyUsageAnalysis(visits)
        assert usage.invocation_stats == legacy_usage.invocation_stats
        assert usage.check_stats == legacy_usage.check_stats
        assert usage.static_stats == legacy_usage.static_stats
        assert usage.website_count == legacy_usage.website_count

        from repro.analysis.delegation import DelegationAnalysis
        from repro.analysis.headers import HeaderAnalysis
        from repro.analysis.overpermission import OverPermissionAnalysis
        delegation = DelegationAnalysis(index)
        legacy_delegation = LegacyDelegationAnalysis(visits)
        assert (delegation.directive_distribution()
                == legacy_delegation.directive_distribution())
        assert (delegation.share_sites_delegating
                == legacy_delegation.share_sites_delegating)

        headers = HeaderAnalysis(index)
        legacy_headers = LegacyHeaderAnalysis(visits)
        assert headers.adoption() == legacy_headers.adoption()
        assert (headers.top_level_class_shares()
                == legacy_headers.top_level_class_shares())

        over = OverPermissionAnalysis(index)
        legacy_over = LegacyOverPermissionAnalysis(visits)
        assert (over.total_affected_websites()
                == legacy_over.total_affected_websites())


class TestIndexConstruction:
    def test_accepts_dataset_iterable_and_index(self):
        dataset = crawl(site_count=200)
        visits = list(dataset.successful())
        from_dataset = UsageAnalysis(DatasetIndex(dataset))
        from_visits = UsageAnalysis(visits)  # legacy constructor signature
        assert from_dataset.invocation_stats == from_visits.invocation_stats

    def test_as_index_passthrough(self):
        index = DatasetIndex([])
        assert as_index(index) is index
        assert as_index(index, index.registry) is index

    def test_skips_failed_visits(self):
        from repro.crawler.records import failed_visit
        ok = make_visit(0, [make_frame(0, "https://a.com")])
        bad = failed_visit(1, "https://b.com", "load-timeout")
        index = DatasetIndex([ok, bad])
        assert index.website_count == 1

    def test_top_property_raises_without_top_frame(self):
        frame = make_frame(1, "https://a.com/w", parent=0, depth=1)
        visit = make_visit(0, [frame])
        visit.frames[0] = dataclasses.replace(frame, parent_id=0)
        index = DatasetIndex([visit])
        vi = index.visit_indexes[0]
        assert vi.top_frame is None
        with pytest.raises(ValueError):
            vi.top

    def test_invoked_dedup_matches_usage_semantics(self):
        frames = [make_frame(0, "https://a.com")]
        calls = [
            make_call(0, "navigator.getBattery", "invoke", ["battery"]),
            make_call(0, "navigator.getBattery", "invoke", ["battery"]),
            make_call(0, "navigator.permissions.query", "status-check",
                      ["camera"]),
        ]
        index = DatasetIndex([make_visit(0, frames, calls)])
        vi = index.visit_indexes[0]
        assert (0, "battery") in vi.invoked
        assert (0, "camera") in vi.checked
        # Repeated invocations collapse to one first-occurrence entry.
        assert len([k for k in vi.invoked if k[1] == "battery"]) == 1


class TestParserInterning:
    def test_repeated_parse_returns_same_object(self):
        clear_parser_caches()
        first = parse_allow_attribute("camera; geolocation 'self'")
        second = parse_allow_attribute("camera; geolocation 'self'")
        assert first is second

    def test_clear_forces_fresh_object(self):
        first = parse_allow_attribute("camera")
        clear_parser_caches()
        second = parse_allow_attribute("camera")
        assert first is not second
        assert first.delegated_features == second.delegated_features

    def test_disabled_context_bypasses_cache(self):
        clear_parser_caches()
        with parser_caches_disabled():
            first = parse_allow_attribute("microphone")
            second = parse_allow_attribute("microphone")
        assert first is not second
        assert parse_allow_attribute.cache == {}

    def test_header_parse_errors_are_never_cached(self):
        clear_parser_caches()
        with pytest.raises(HeaderParseError):
            parse_permissions_policy_header("camera=(((")
        # A failed parse leaves nothing behind and re-raises freshly.
        with pytest.raises(HeaderParseError):
            parse_permissions_policy_header("camera=(((")

    def test_header_parse_cached_result_is_equal(self):
        clear_parser_caches()
        first = parse_permissions_policy_header("camera=self, geolocation=*")
        second = parse_permissions_policy_header("camera=self, geolocation=*")
        assert first is second


class TestRankBucketRegression:
    """Regression: ``_bucket_for`` used ``percentile < bound or bound >=
    1.0``, which dumped every rank into the first bucket whose bound was
    ``>= 1.0`` regardless of position, and accepted unsorted bounds."""

    def _analysis(self, buckets=DEFAULT_BUCKETS, total=100):
        return RankBucketAnalysis([], total, buckets=buckets)

    def test_ranks_land_in_ascending_buckets(self):
        analysis = self._analysis()
        assert analysis._bucket_for(0).label == "top 2%"
        assert analysis._bucket_for(5).label == "2-10%"
        assert analysis._bucket_for(25).label == "10-40%"
        assert analysis._bucket_for(75).label == "tail"

    def test_rank_at_or_past_total_falls_through_to_last(self):
        analysis = self._analysis()
        assert analysis._bucket_for(100).label == "tail"
        assert analysis._bucket_for(5000).label == "tail"

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            self._analysis(buckets=(("a", 0.5), ("b", 0.1), ("c", 1.0)))

    def test_duplicate_bounds_rejected(self):
        with pytest.raises(ValueError):
            self._analysis(buckets=(("all", 1.0), ("unreachable", 1.0)))

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            self._analysis(buckets=())

    def test_single_bucket_catches_everything(self):
        analysis = self._analysis(buckets=(("all", 1.0),))
        assert analysis._bucket_for(0).label == "all"
        assert analysis._bucket_for(99).label == "all"

    def test_aggregation_counts_by_bucket(self):
        visits = [make_visit(rank, [make_frame(0, "https://a.com")])
                  for rank in (0, 1, 5, 50, 99)]
        analysis = RankBucketAnalysis(visits, 100)
        sites = {b.label: b.sites for b in analysis.buckets}
        assert sites == {"top 2%": 2, "2-10%": 1, "10-40%": 0, "tail": 2}
