"""Tests for permission states and the returning-visitor prompt flow."""

import pytest

from repro.browser.api import DEFAULT_API_SURFACE
from repro.browser.instrumentation import InstrumentedRuntime, WebAPIRuntime
from repro.browser.permission_store import PermissionState, PermissionStore
from repro.browser.scripts import ApiCall, Script
from repro.policy.engine import PolicyFrame


class TestPermissionStore:
    def test_powerful_defaults_to_prompt(self):
        store = PermissionStore()
        assert store.state("a.com", "camera") is PermissionState.PROMPT
        assert store.requires_prompt("a.com", "camera")

    def test_non_powerful_is_always_granted(self):
        store = PermissionStore()
        assert store.state("a.com", "gamepad") is PermissionState.GRANTED
        assert not store.requires_prompt("a.com", "gamepad")

    def test_grant_and_deny_remembered_per_site(self):
        store = PermissionStore()
        store.grant("a.com", "camera")
        store.deny("b.com", "camera")
        assert store.state("a.com", "camera") is PermissionState.GRANTED
        assert store.state("b.com", "camera") is PermissionState.DENIED
        assert store.state("c.com", "camera") is PermissionState.PROMPT

    def test_reset_returns_to_prompt(self):
        store = PermissionStore()
        store.grant("a.com", "camera")
        store.reset("a.com", "camera")
        assert store.state("a.com", "camera") is PermissionState.PROMPT

    def test_cannot_set_state_for_non_powerful(self):
        store = PermissionStore()
        with pytest.raises(ValueError):
            store.grant("a.com", "gamepad")

    def test_granted_permissions_lists_hijack_surface(self):
        store = PermissionStore()
        store.grant("a.com", "camera")
        store.grant("a.com", "microphone")
        store.deny("a.com", "geolocation")
        assert store.granted_permissions("a.com") == ("camera", "microphone")

    def test_unknown_permission_state_is_granted_like(self):
        assert PermissionStore().state("a.com", "warp-drive") \
            is PermissionState.GRANTED

    def test_snapshot_and_len(self):
        store = PermissionStore()
        store.grant("a.com", "camera")
        assert len(store) == 1
        assert store.snapshot() == {("a.com", "camera"): "granted"}


class TestQueryReturnsStates:
    def _runtime(self, store=None):
        frame = PolicyFrame.top("https://example.org")
        return WebAPIRuntime(frame, store=store)

    def test_query_prompt_by_default(self):
        runtime = self._runtime()
        outcome = runtime.call("navigator.permissions.query", "camera")
        assert outcome["result"] == "prompt"

    def test_query_reflects_granted_state(self):
        store = PermissionStore()
        store.grant("example.org", "camera")
        runtime = self._runtime(store)
        outcome = runtime.call("navigator.permissions.query", "camera")
        assert outcome["result"] == "granted"

    def test_query_denied_when_policy_blocks(self):
        frame = PolicyFrame.top("https://example.org", header="camera=()")
        runtime = WebAPIRuntime(frame)
        outcome = runtime.call("navigator.permissions.query", "camera")
        assert outcome["result"] == "denied"
        assert not outcome["allowed"]

    def test_non_powerful_query_granted(self):
        runtime = self._runtime()
        outcome = runtime.call("navigator.permissions.query", "gamepad")
        assert outcome["result"] == "granted"


class TestSilentHijackScenario:
    """Paper Section 5.3: 'the external URL could use the permission, even
    if the delegation occurred after the permission was granted'."""

    def test_prompt_skipped_when_already_granted(self):
        from repro.browser.dom import Document, DocumentContent
        from repro.browser.prompts import PromptModel, PromptOutcome
        from repro.browser.instrumentation import InvocationRecord
        from repro.browser.api import ApiKind

        store = PermissionStore()
        store.grant("example.org", "camera")
        model = PromptModel(store=store)
        frame = PolicyFrame.top("https://example.org")
        document = Document(url="https://example.org",
                            origin=frame.origin, headers={},
                            content=DocumentContent(),
                            policy_frame=frame, frame_id=0)
        record = InvocationRecord(
            api="navigator.mediaDevices.getUserMedia",
            kind=ApiKind.INVOKE, permissions=("camera",), args=("camera",),
            stacktrace=(), frame_id=0, allowed=True)
        prompt = model.consider(record, document, document)
        assert prompt is None, "granted permission must be used silently"

    def test_granting_decider_persists_to_store(self):
        from repro.browser.dom import Document, DocumentContent
        from repro.browser.prompts import PromptModel, PromptOutcome
        from repro.browser.instrumentation import InvocationRecord
        from repro.browser.api import ApiKind

        model = PromptModel(decider=PromptOutcome.GRANTED)
        frame = PolicyFrame.top("https://example.org")
        document = Document(url="https://example.org",
                            origin=frame.origin, headers={},
                            content=DocumentContent(),
                            policy_frame=frame, frame_id=0)
        record = InvocationRecord(
            api="navigator.mediaDevices.getUserMedia",
            kind=ApiKind.INVOKE, permissions=("camera",), args=("camera",),
            stacktrace=(), frame_id=0, allowed=True)
        first = model.consider(record, document, document)
        second = model.consider(record, document, document)
        assert first is not None
        assert second is None  # the grant is remembered
        assert model.store.state("example.org", "camera") \
            is PermissionState.GRANTED
