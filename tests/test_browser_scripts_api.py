"""Tests for the script model and the instrumented API surface."""

import pytest

from repro.browser.api import (
    ApiKind,
    APISurface,
    DEFAULT_API_SURFACE,
    allowed_features_call,
    feature_policy_allows_call,
    invoke_call,
    query_call,
)
from repro.browser.scripts import ApiCall, Script, render_source
from repro.policy.origin import Origin
from repro.registry.features import DEFAULT_REGISTRY


class TestScriptModel:
    def test_inline_script_is_first_party(self):
        script = Script(url=None, source="x")
        assert script.inline
        assert script.is_first_party_for(Origin.parse("https://a.com"))

    def test_same_site_script_is_first_party(self):
        script = Script(url="https://cdn.a.com/x.js", source="x")
        assert script.is_first_party_for(Origin.parse("https://www.a.com"))

    def test_cross_site_script_is_third_party(self):
        script = Script(url="https://tracker.example/x.js", source="x")
        assert not script.is_first_party_for(Origin.parse("https://a.com"))

    def test_immediate_vs_gated_operations(self):
        ops = (ApiCall("navigator.getBattery"),
               ApiCall("navigator.share", requires_interaction=True))
        script = Script(url=None, source="x", operations=ops)
        assert len(script.immediate_operations()) == 1
        assert len(script.gated_operations()) == 1

    def test_obfuscation_hides_api_strings_keeps_operations(self):
        """The paper's static/dynamic asymmetry: obfuscated calls remain
        observable dynamically but not via string matching."""
        source = render_source(["navigator.getBattery"])
        script = Script(url=None, source=source,
                        operations=(ApiCall("navigator.getBattery"),))
        assert "navigator.getBattery" in script.source
        obfuscated = script.with_obfuscation()
        assert "navigator.getBattery" not in obfuscated.source
        assert obfuscated.operations == script.operations
        assert obfuscated.obfuscated

    def test_obfuscated_source_not_matched_by_registry(self):
        source = render_source(["navigator.getBattery", "getUserMedia"])
        script = Script(url=None, source=source).with_obfuscation()
        assert DEFAULT_REGISTRY.match_api(script.source) == ()

    def test_render_source_contains_all_apis(self):
        source = render_source(["a.b.c", "d.e"])
        assert "a.b.c" in source and "d.e" in source


class TestApiSurface:
    def test_surface_covers_instrumented_permissions(self):
        """Every Appendix A.4 permission has an invoke endpoint."""
        for perm in DEFAULT_REGISTRY.instrumented():
            spec = DEFAULT_API_SURFACE.invoke_api_for(perm.name)
            assert spec.name

    def test_invoke_call_for_camera_uses_getusermedia(self):
        call = invoke_call("camera")
        assert call.api == "navigator.mediaDevices.getUserMedia"
        assert call.args == ("camera",)

    def test_invoke_call_for_geolocation(self):
        call = invoke_call("geolocation")
        assert "geolocation" in call.api

    def test_query_call_is_status_check(self):
        call = query_call("camera")
        spec = DEFAULT_API_SURFACE.get(call.api)
        assert spec.kind is ApiKind.STATUS_CHECK
        assert spec.permissions_for(call.args) == ("camera",)

    def test_allowed_features_defaults_to_deprecated_spelling(self):
        """Paper 4.1.1: most scripts still use the Feature Policy API."""
        call = allowed_features_call()
        assert "featurePolicy" in call.api
        assert DEFAULT_API_SURFACE.get(call.api).deprecated

    def test_modern_spelling_available(self):
        call = allowed_features_call(deprecated=False)
        assert "permissionsPolicy" in call.api

    def test_allows_feature_carries_permission_argument(self):
        call = feature_policy_allows_call("camera")
        spec = DEFAULT_API_SURFACE.get(call.api)
        assert spec.permissions_for(call.args) == ("camera",)

    def test_unknown_api_raises(self):
        with pytest.raises(KeyError):
            DEFAULT_API_SURFACE.get("navigator.warpDrive")

    def test_unknown_permission_invoke_raises(self):
        with pytest.raises(KeyError):
            DEFAULT_API_SURFACE.invoke_api_for("warp-drive")

    def test_deprecated_apis_subset(self):
        deprecated = DEFAULT_API_SURFACE.deprecated_apis()
        assert deprecated
        assert all("featurePolicy" in spec.name for spec in deprecated)

    def test_duplicate_spec_rejected(self):
        spec = DEFAULT_API_SURFACE.get("navigator.getBattery")
        with pytest.raises(ValueError):
            APISurface(specs=(spec, spec))
