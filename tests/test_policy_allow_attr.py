"""Tests for the iframe allow attribute (paper Sections 2.2.2, 4.2)."""

import pytest

from repro.policy.allow_attr import (
    DelegationDirectiveKind,
    parse_allow_attribute,
    serialize_allow_attribute,
)
from repro.policy.allowlist import Allowlist
from repro.policy.origin import Origin

SELF = Origin.parse("https://example.org")
SRC = Origin.parse("https://widget.net")
OTHER = Origin.parse("https://evil.example")


class TestParsing:
    def test_single_feature_defaults_to_src(self):
        attr = parse_allow_attribute("camera")
        entry = attr.entry("camera")
        assert entry.kind is DelegationDirectiveKind.DEFAULT_SRC
        assert not entry.explicit
        assert entry.allowlist.src

    def test_star_directive(self):
        attr = parse_allow_attribute("microphone *")
        entry = attr.entry("microphone")
        assert entry.kind is DelegationDirectiveKind.STAR
        assert entry.allowlist.allows(OTHER, self_origin=SELF)

    def test_none_opt_out(self):
        """Paper 2.2.2: allow=\"gamepad 'none'\" restricts the iframe."""
        attr = parse_allow_attribute("gamepad 'none'")
        entry = attr.entry("gamepad")
        assert entry.kind is DelegationDirectiveKind.NONE
        assert entry.is_opt_out
        assert "gamepad" not in attr.delegated_features

    def test_explicit_src(self):
        attr = parse_allow_attribute("camera 'src'")
        assert attr.entry("camera").kind is DelegationDirectiveKind.EXPLICIT_SRC

    def test_self_keyword(self):
        attr = parse_allow_attribute("camera 'self'")
        entry = attr.entry("camera")
        assert entry.kind is DelegationDirectiveKind.SELF
        assert entry.allowlist.allows(SELF, self_origin=SELF)

    def test_explicit_origin(self):
        attr = parse_allow_attribute("geolocation https://widget.net")
        entry = attr.entry("geolocation")
        assert entry.kind is DelegationDirectiveKind.ORIGIN
        assert entry.allowlist.allows(SRC, self_origin=SELF)

    def test_mixed_members(self):
        attr = parse_allow_attribute("camera 'self' https://widget.net")
        assert attr.entry("camera").kind is DelegationDirectiveKind.MIXED

    def test_livechat_template(self):
        """The exact LiveChat delegation template from Section 5.2."""
        attr = parse_allow_attribute(
            "clipboard-read; clipboard-write; autoplay; microphone *; "
            "camera *; display-capture *; picture-in-picture *; fullscreen *")
        assert set(attr.features) == {
            "clipboard-read", "clipboard-write", "autoplay", "microphone",
            "camera", "display-capture", "picture-in-picture", "fullscreen"}
        assert attr.entry("camera").kind is DelegationDirectiveKind.STAR
        assert attr.entry("clipboard-read").kind is DelegationDirectiveKind.DEFAULT_SRC

    def test_empty_attribute(self):
        attr = parse_allow_attribute("")
        assert not attr
        assert attr.features == ()

    def test_trailing_semicolons_tolerated(self):
        attr = parse_allow_attribute("camera; microphone;")
        assert set(attr.features) == {"camera", "microphone"}

    def test_invalid_tokens_dropped(self):
        attr = parse_allow_attribute("camera @@garbage@@")
        entry = attr.entry("camera")
        assert entry is not None
        assert not entry.allowlist.allows(OTHER, self_origin=SELF)

    def test_repeated_feature_merges(self):
        attr = parse_allow_attribute("camera 'self'; camera https://widget.net")
        entry = attr.entry("camera")
        assert entry.kind is DelegationDirectiveKind.MIXED
        assert entry.allowlist.self_
        assert entry.allowlist.origins


class TestSrcSemantics:
    def test_default_src_matches_only_src_origin(self):
        """82.12% of paper delegations use this default (Section 4.2.2):
        only the iframe's src origin receives the permission — a redirect
        to another origin loses it."""
        entry = parse_allow_attribute("camera").entry("camera")
        assert entry.allowlist.allows(SRC, self_origin=SELF, src_origin=SRC)
        assert not entry.allowlist.allows(OTHER, self_origin=SELF, src_origin=SRC)

    def test_star_survives_redirects(self):
        """The wildcard keeps delegating after redirection — the risk the
        LiveChat case study calls out."""
        entry = parse_allow_attribute("camera *").entry("camera")
        assert entry.allowlist.allows(OTHER, self_origin=SELF, src_origin=SRC)


class TestSerialization:
    def test_default_src_serializes_bare(self):
        text = serialize_allow_attribute({"camera": Allowlist.src_only()})
        assert text == "camera"

    def test_none_serializes_quoted(self):
        text = serialize_allow_attribute({"gamepad": Allowlist.nobody()})
        assert text == "gamepad 'none'"

    def test_roundtrip(self):
        original = "camera; microphone *; geolocation 'self'"
        attr = parse_allow_attribute(original)
        text = serialize_allow_attribute(
            {name: entry.allowlist for name, entry in attr.entries.items()})
        reparsed = parse_allow_attribute(text)
        assert set(reparsed.features) == set(attr.features)
        for feature in attr.features:
            a = attr.entry(feature).allowlist
            b = reparsed.entry(feature).allowlist
            assert (a.star, a.self_, a.src, a.origins) == (
                b.star, b.self_, b.src, b.origins)
