"""Tests for the header linter (paper Section 4.3.3 misconfigurations)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.policy.linter import HeaderLinter, LintRule, LintSeverity


@pytest.fixture(scope="module")
def linter() -> HeaderLinter:
    return HeaderLinter()


class TestFatalFindings:
    def test_feature_policy_syntax_is_fatal(self, linter):
        """The most common fatal mistake in the paper's data."""
        report = linter.lint("camera 'self'; geolocation 'none'")
        assert report.header_dropped
        assert report.findings[0].rule is LintRule.FEATURE_POLICY_SYNTAX

    def test_trailing_comma_is_fatal(self, linter):
        """The second most common: 'misplaced commas, such as ending the
        header with a comma'."""
        report = linter.lint("camera=(), geolocation=(),")
        assert report.header_dropped
        assert report.findings[0].rule is LintRule.TRAILING_COMMA

    def test_generic_syntax_error(self, linter):
        report = linter.lint("camera=(self")
        assert report.header_dropped
        assert report.findings[0].rule is LintRule.SYNTAX_ERROR
        assert report.findings[0].is_fatal


class TestSemanticFindings:
    def test_none_token(self, linter):
        report = linter.lint("camera=(none)")
        assert not report.header_dropped
        assert report.findings_by_rule(LintRule.UNRECOGNIZED_TOKEN)

    def test_unquoted_url(self, linter):
        report = linter.lint("camera=(self https://a.com)")
        assert report.findings_by_rule(LintRule.UNQUOTED_URL)

    def test_contradictory_self_star(self, linter):
        report = linter.lint("camera=(self *)")
        assert report.findings_by_rule(LintRule.CONTRADICTORY_DIRECTIVE)

    def test_url_without_self(self, linter):
        report = linter.lint('camera=("https://a.com")')
        assert report.findings_by_rule(LintRule.URL_WITHOUT_SELF)

    def test_unknown_feature(self, linter):
        report = linter.lint("hyperdrive=()")
        findings = report.findings_by_rule(LintRule.UNKNOWN_FEATURE)
        assert findings and findings[0].severity is LintSeverity.WARNING

    def test_star_no_effect_warning(self, linter):
        """Paper 4.3.1: 6.02% declare '*', which has no real effect."""
        report = linter.lint("camera=*")
        findings = report.findings_by_rule(LintRule.STAR_NO_EFFECT)
        assert findings and findings[0].feature == "camera"

    def test_clean_header_has_no_findings(self, linter):
        report = linter.lint('camera=(), geolocation=(self "https://m.example")')
        assert not report.findings
        assert not report.has_semantic_issues

    def test_finding_carries_feature_name(self, linter):
        report = linter.lint("camera=(none)")
        assert report.findings[0].feature == "camera"


class TestLinterWithoutRegistry:
    def test_unknown_feature_not_flagged(self):
        linter = HeaderLinter(registry=None)
        report = linter.lint("hyperdrive=()")
        assert not report.findings_by_rule(LintRule.UNKNOWN_FEATURE)


class TestRobustness:
    @given(st.text(max_size=80))
    def test_lint_never_raises(self, raw):
        report = HeaderLinter().lint(raw)
        assert report.raw == raw
        if report.header_dropped:
            assert any(f.is_fatal for f in report.findings)
        else:
            assert report.parsed is not None
