"""Tests for prompt-pressure analysis and prompt record persistence."""

import pytest

from repro.analysis.prompts_analysis import PromptAnalysis
from repro.crawler.pool import CrawlerPool
from repro.crawler.records import PromptRecord
from repro.crawler.storage import CrawlStore
from repro.synthweb.generator import SyntheticWeb
from tests.test_analysis import make_frame, make_visit


@pytest.fixture(scope="module")
def dataset():
    return CrawlerPool(SyntheticWeb(700, seed=2024), workers=2).run()


class TestPromptRecords:
    def test_crawl_records_prompts(self, dataset):
        prompted = [v for v in dataset.successful() if v.prompts]
        assert prompted, "some sites must prompt on load"
        prompt = prompted[0].prompts[0]
        assert prompt.permission
        assert "asking to" in prompt.text

    def test_prompts_roundtrip_through_sqlite(self, dataset, tmp_path):
        path = tmp_path / "c.sqlite"
        with CrawlStore(path) as store:
            store.save_dataset(dataset)
        with CrawlStore(path) as store:
            loaded = store.load_dataset()
        original = sum(len(v.prompts) for v in dataset.visits)
        restored = sum(len(v.prompts) for v in loaded.visits)
        assert original == restored > 0


class TestPromptAnalysis:
    def test_notifications_dominate_onload_prompts(self, dataset):
        """Push providers request notifications on load — the classic
        interruption the prompt-quieting literature targets."""
        analysis = PromptAnalysis(dataset.successful())
        offenders = dict(analysis.top_offenders())
        assert offenders
        assert max(offenders, key=offenders.get) == "notifications"

    def test_prompting_share_is_minority(self, dataset):
        analysis = PromptAnalysis(dataset.successful())
        assert 0.02 < analysis.prompting_share < 0.35

    def test_storage_access_prompts_name_embedded_site(self, dataset):
        analysis = PromptAnalysis(dataset.successful())
        report = analysis.report
        assert report.prompts_naming_embedded_site > 0
        assert report.prompts_naming_embedded_site \
            <= report.prompts_from_embedded

    def test_hand_built_visit(self):
        frames = [make_frame(0, "https://a.com"),
                  make_frame(1, "https://b.com/w", parent=0, depth=1)]
        visit = make_visit(0, frames)
        visit.prompts = [
            PromptRecord("camera", 0, "a.com", "a.com is asking to: x"),
            PromptRecord("storage-access", 1, "b.com",
                         "b.com is asking to: y"),
        ]
        analysis = PromptAnalysis([visit])
        assert analysis.report.total_prompts == 2
        assert analysis.report.prompts_from_embedded == 1
        assert analysis.report.prompts_naming_embedded_site == 1
        assert analysis.prompting_share == 1.0

    def test_empty(self):
        analysis = PromptAnalysis([])
        assert analysis.prompting_share == 0.0
        assert analysis.report.embedded_share == 0.0
