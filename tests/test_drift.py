"""Tests for the longitudinal drift engine (DESIGN.md §4i).

The ISSUE-8 correctness matrix: self-diff empty across all three crawl
backends, diff(A,B) the exact inverse of diff(B,A), streamed diff equal
to a materialized-dataset reference diff field-by-field, deterministic
timelines over seeds 1/2/3, deterministic + escaped HTML rendering, and
the CLI wiring.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.drift import (
    DRIFT_METRICS,
    SIGNATURE_FIELDS,
    CrawlDiff,
    SiteDelta,
    build_timeline,
    diff_stores,
    metric_deltas,
    profile_store,
    profile_visits,
    site_signature,
    timeline_from_metrics,
)
from repro.analysis.drift_report import (
    render_diff_html,
    render_diff_text,
    render_timeline_html,
    render_timeline_text,
)
from repro.crawler.pool import CrawlerPool
from repro.crawler.storage import CrawlStore
from repro.synthweb.eras import Era, rates_for_era
from repro.synthweb.generator import SyntheticWeb

SITES = 300
SEED = 11


def _era_dataset(era, *, sites=SITES, seed=SEED, backend="serial"):
    web = SyntheticWeb(sites, seed=seed, rates=rates_for_era(era).rates)
    return CrawlerPool(web, workers=2, backend=backend).run()


def _save(path, visits):
    with CrawlStore(path) as store:
        store.save_visits(visits)
    return path


@pytest.fixture(scope="module")
def era_datasets():
    return {era: _era_dataset(era)
            for era in (Era.Y2020, Era.Y2022, Era.Y2024)}


@pytest.fixture(scope="module")
def era_stores(era_datasets, tmp_path_factory):
    root = tmp_path_factory.mktemp("drift-stores")
    return {era: _save(root / f"era-{era.value}.sqlite", dataset.visits)
            for era, dataset in era_datasets.items()}


class TestSiteSignature:
    def test_fields_are_the_changed_vocabulary(self):
        signature = site_signature(_era_dataset(
            Era.Y2024, sites=5).visits[0])
        for name in SIGNATURE_FIELDS:
            assert hasattr(signature, name)

    def test_json_round_trip_is_field_stable(self, era_datasets):
        signature = site_signature(era_datasets[Era.Y2024].visits[0])
        payload = json.loads(json.dumps(signature.to_json()))
        assert payload["rank"] == signature.rank
        assert payload["site"] == signature.site
        assert tuple(payload["delegated_features"]) \
            == signature.delegated_features


class TestSelfDiff:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_self_diff_empty_across_backends(self, backend, era_datasets,
                                             era_stores, tmp_path):
        dataset = _era_dataset(Era.Y2024, backend=backend)
        path = _save(tmp_path / f"{backend}.sqlite", dataset.visits)
        diff = diff_stores(path, path)
        assert diff.is_empty
        assert diff.unchanged_sites == SITES
        assert diff.before == diff.after
        # Backends are byte-identical, so a cross-backend diff against
        # the serial store is empty too.
        cross = diff_stores(era_stores[Era.Y2024], path)
        assert cross.is_empty

    def test_self_diff_metric_deltas_all_zero(self, era_stores):
        diff = diff_stores(era_stores[Era.Y2020], era_stores[Era.Y2020])
        for delta in diff.deltas:
            assert delta.absolute == 0.0


class TestInverse:
    @pytest.fixture(scope="class")
    def pair(self, era_datasets, tmp_path_factory):
        root = tmp_path_factory.mktemp("inverse")
        # A drops the first 20 ranks; B drops the last 50 — so both
        # directions see added *and* removed sites, plus era-driven
        # changes in the shared middle.
        visits_a = [v for v in era_datasets[Era.Y2020].visits if v.rank >= 20]
        visits_b = [v for v in era_datasets[Era.Y2024].visits if v.rank < 250]
        return (_save(root / "a.sqlite", visits_a),
                _save(root / "b.sqlite", visits_b))

    def test_added_removed_are_exact_inverses(self, pair):
        forward = diff_stores(*pair, labels=("a", "b"))
        backward = diff_stores(pair[1], pair[0], labels=("b", "a"))
        assert forward.added and forward.removed
        assert forward.added == backward.removed
        assert forward.removed == backward.added

    def test_changed_swaps_before_and_after(self, pair):
        forward = diff_stores(*pair, labels=("a", "b"))
        backward = diff_stores(pair[1], pair[0], labels=("b", "a"))
        assert forward.changed
        assert len(forward.changed) == len(backward.changed)
        for fwd, bwd in zip(forward.changed, backward.changed):
            assert (fwd.rank, fwd.site) == (bwd.rank, bwd.site)
            assert fwd.before == bwd.after
            assert fwd.after == bwd.before
            assert fwd.changed_fields == bwd.changed_fields
        assert forward.unchanged_sites == backward.unchanged_sites

    def test_profiles_swap(self, pair):
        forward = diff_stores(*pair, labels=("a", "b"))
        backward = diff_stores(pair[1], pair[0], labels=("b", "a"))
        # Labels differ by construction, so compare the numbers:
        for name in DRIFT_METRICS:
            assert getattr(forward.before, name) \
                == getattr(backward.after, name)
            assert getattr(forward.after, name) \
                == getattr(backward.before, name)


class TestStreamedEqualsMaterialized:
    def test_profile_store_equals_profile_visits(self, era_datasets,
                                                 era_stores):
        for era, dataset in era_datasets.items():
            streamed = profile_store(era_stores[era], label="x")
            materialized = profile_visits(dataset.visits, label="x")
            assert streamed == materialized

    def test_diff_matches_reference_field_by_field(self, era_datasets,
                                                   era_stores):
        streamed = diff_stores(era_stores[Era.Y2020],
                               era_stores[Era.Y2024], labels=("a", "b"))

        # Independent reference: materialize both datasets, build the
        # signature maps by hand, classify rank by rank.
        sig_a = {v.rank: site_signature(v)
                 for v in era_datasets[Era.Y2020].visits}
        sig_b = {v.rank: site_signature(v)
                 for v in era_datasets[Era.Y2024].visits}
        added, removed, changed, unchanged = [], [], [], 0
        for rank in sorted(set(sig_a) | set(sig_b)):
            if rank not in sig_a:
                added.append(sig_b[rank])
            elif rank not in sig_b:
                removed.append(sig_a[rank])
            elif sig_a[rank].site != sig_b[rank].site:
                removed.append(sig_a[rank])
                added.append(sig_b[rank])
            elif sig_a[rank] == sig_b[rank]:
                unchanged += 1
            else:
                fields = tuple(
                    name for name in SIGNATURE_FIELDS
                    if getattr(sig_a[rank], name)
                    != getattr(sig_b[rank], name))
                changed.append(SiteDelta(
                    rank=rank, site=sig_a[rank].site, changed_fields=fields,
                    before=sig_a[rank], after=sig_b[rank]))

        assert streamed.added == tuple(added)
        assert streamed.removed == tuple(removed)
        assert streamed.changed == tuple(changed)
        assert streamed.unchanged_sites == unchanged
        assert streamed.before == profile_visits(
            era_datasets[Era.Y2020].visits, label="a")
        assert streamed.after == profile_visits(
            era_datasets[Era.Y2024].visits, label="b")


class TestMetricDeltas:
    def test_relative_is_none_on_zero_baseline(self, era_stores):
        diff = diff_stores(era_stores[Era.Y2020], era_stores[Era.Y2024])
        by_name = {delta.metric: delta for delta in diff.deltas}
        pp = by_name["pp_top_level_share"]
        assert pp.before == 0.0 and pp.after > 0.0
        assert pp.relative is None
        assert pp.absolute == pp.after
        count = by_name["attempted_sites"]
        assert count.relative == 0.0 and count.absolute == 0.0

    def test_every_drift_metric_is_a_store_metrics_field(self, era_stores):
        metrics = profile_store(era_stores[Era.Y2024])
        deltas = metric_deltas(metrics, metrics)
        assert tuple(delta.metric for delta in deltas) == DRIFT_METRICS


class TestTimeline:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_deltas_deterministic_across_rebuilds(self, seed,
                                                  tmp_path_factory):
        def build(root):
            paths = []
            for era in (Era.Y2020, Era.Y2024):
                dataset = _era_dataset(era, sites=200, seed=seed)
                paths.append(_save(root / f"{era.value}.sqlite",
                                   dataset.visits))
            return build_timeline(paths, labels=("2020", "2024"))

        first = build(tmp_path_factory.mktemp(f"tl-{seed}-a"))
        second = build(tmp_path_factory.mktemp(f"tl-{seed}-b"))
        assert first == second
        assert render_timeline_html(first) == render_timeline_html(second)

    def test_series_math(self, era_stores):
        timeline = build_timeline(
            [era_stores[era]
             for era in (Era.Y2020, Era.Y2022, Era.Y2024)],
            labels=("2020", "2022", "2024"))
        assert timeline.labels == ("2020", "2022", "2024")
        for series in timeline.series:
            assert len(series.values) == 3
            assert len(series.absolute_deltas) == 2
            for index, delta in enumerate(series.absolute_deltas):
                assert delta == series.values[index + 1] \
                    - series.values[index]
            assert series.total_delta \
                == series.values[-1] - series.values[0]
        pp = timeline.series_for("pp_top_level_share")
        assert pp.values[0] == 0.0
        assert pp.relative_deltas[0] is None  # zero baseline
        with pytest.raises(KeyError):
            timeline.series_for("no_such_metric")

    def test_rejects_degenerate_input(self, era_stores):
        with pytest.raises(ValueError):
            build_timeline([era_stores[Era.Y2024]])
        with pytest.raises(ValueError):
            build_timeline([era_stores[Era.Y2020],
                            era_stores[Era.Y2024]], labels=("only-one",))

    def test_from_precomputed_metrics(self, era_stores):
        profiles = [profile_store(era_stores[era], label=era.value)
                    for era in (Era.Y2020, Era.Y2024)]
        timeline = timeline_from_metrics(profiles)
        assert timeline.labels == ("2020", "2024")
        assert json.dumps(timeline.to_json())


class TestRendering:
    def test_html_bytes_deterministic(self, era_stores):
        diff = diff_stores(era_stores[Era.Y2020], era_stores[Era.Y2024],
                           labels=("2020", "2024"))
        assert render_diff_html(diff).encode() \
            == render_diff_html(diff).encode()

    def test_hostile_site_names_are_escaped(self):
        from repro.analysis.drift import SiteSignature

        base = profile_visits([], label="a")
        before = SiteSignature(
            rank=1, site='<script>"pwn"</script>', success=True,
            failure=None, has_pp_header=False, has_fp_header=False,
            delegated_features=("camera",), frames=1)
        after = SiteSignature(
            rank=1, site='<script>"pwn"</script>', success=True,
            failure=None, has_pp_header=True, has_fp_header=False,
            delegated_features=("camera",), frames=1)
        diff = CrawlDiff(
            before=base, after=profile_visits([], label="b"),
            added=(), removed=(),
            changed=(SiteDelta(rank=1, site=before.site,
                               changed_fields=("has_pp_header",),
                               before=before, after=after),),
            unchanged_sites=0)
        html = render_diff_html(diff)
        assert "<script>" not in html
        assert "&lt;script&gt;" in html

    def test_text_renderers_cover_the_tables(self, era_stores):
        diff = diff_stores(era_stores[Era.Y2020], era_stores[Era.Y2024],
                           labels=("2020", "2024"))
        text = render_diff_text(diff, max_site_rows=5)
        assert "crawl diff: 2020 → 2024" in text
        assert "aggregate deltas" in text
        assert "pp_top_level_share" in text
        timeline = build_timeline(
            [era_stores[Era.Y2020], era_stores[Era.Y2024]],
            labels=("2020", "2024"))
        table = render_timeline_text(timeline)
        assert "drift timeline" in table
        assert "Δ last-first" in table


class TestObservability:
    def test_diff_emits_spans_and_counters(self, era_stores):
        from repro.obs import REGISTRY, TRACER, observed

        def names(span):
            yield span.name
            for child in span.children:
                yield from names(child)

        with observed():
            diff = diff_stores(era_stores[Era.Y2020],
                               era_stores[Era.Y2024])
            render_timeline_html(build_timeline(
                [era_stores[Era.Y2020], era_stores[Era.Y2024]]))
            seen = [name for root in TRACER.roots for name in names(root)]
            snapshot = REGISTRY.snapshot()
        assert "drift.diff" in seen
        assert "drift.profile" in seen
        assert "drift.render_html" in seen
        counters = snapshot["counters"]
        assert counters["drift.sites_changed"] == len(diff.changed)
        assert counters["drift.sites_unchanged"] == diff.unchanged_sites


class TestCli:
    def test_diff_stores_text_json_html(self, era_stores, tmp_path, capsys):
        from repro.cli import main

        before = str(era_stores[Era.Y2020])
        after = str(era_stores[Era.Y2024])
        assert main(["diff-stores", before, after,
                     "--labels", "2020,2024"]) == 0
        out = capsys.readouterr().out
        assert "crawl diff: 2020 → 2024" in out

        assert main(["diff-stores", before, after, "--json",
                     "--max-site-rows", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["added_sites"] == 0
        assert len(payload["changed"]) <= 3
        assert payload["changed_sites"] >= len(payload["changed"])

        html_path = tmp_path / "diff.html"
        assert main(["diff-stores", before, after,
                     "--html", str(html_path)]) == 0
        assert html_path.read_text().startswith("<!doctype html>")

    def test_drift_report_html_deterministic(self, era_stores, tmp_path,
                                             capsys):
        from repro.cli import main

        stores = [str(era_stores[era])
                  for era in (Era.Y2020, Era.Y2022, Era.Y2024)]
        first = tmp_path / "first.html"
        second = tmp_path / "second.html"
        for path in (first, second):
            assert main(["drift-report", *stores,
                         "--labels", "2020,2022,2024",
                         "--html", str(path)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_drift_report_text_and_labels(self, era_stores, capsys):
        from repro.cli import main

        stores = [str(era_stores[era])
                  for era in (Era.Y2020, Era.Y2024)]
        assert main(["drift-report", *stores]) == 0
        out = capsys.readouterr().out
        assert "era-2020" in out and "era-2024" in out  # file-stem labels
        with pytest.raises(SystemExit):
            main(["drift-report", *stores, "--labels", "too,many,labels"])


class TestDriftStudy:
    def test_three_era_study_reproduces_fig2_direction(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        from repro.experiments.drift_study import drift_study

        # seed 9 is one of the small-scale seeds where the Fig. 2
        # direction is resolvable at 400 sites (the era FP rates differ
        # by only 10%, so tiny crawls can tie); the defaults (2,000+
        # sites, seed 2024) resolve it — verified by the bench gates.
        study = drift_study(400, seed=9, workers=2,
                            directory=tmp_path / "stores")
        assert study["fig2_pp_rises"]
        assert study["fig2_fp_falls"]
        pp = study["pp_top_level_share"]
        assert pp[0] == 0.0 and pp[-1] > 0.0
        assert study["diff_2020_2024"]["added"] == 0
        assert study["diff_2020_2024"]["removed"] == 0
        assert study["diff_2020_2024"]["changed"] > 0
        assert len(study["html_sha256"]) == 64
        # The stores are the only input past the crawl step: rebuilding
        # the report from the kept store files reproduces the document.
        timeline = build_timeline(study["store_paths"],
                                  labels=tuple(study["labels"]))
        assert timeline.to_json() == study["timeline"]
