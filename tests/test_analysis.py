"""Tests for the analysis pipeline on hand-built visit records.

These tests verify counting semantics precisely on small synthetic inputs;
the calibration benches verify the aggregate shapes on full crawls.
"""

import pytest

from repro.analysis.delegation import DelegationAnalysis
from repro.analysis.headers import HeaderAnalysis
from repro.analysis.overpermission import OverPermissionAnalysis
from repro.analysis.parties import Party, script_party
from repro.analysis.usage import (
    ALL_PERMISSIONS_ROW,
    GENERAL_ROW,
    UsageAnalysis,
    static_matches,
)
from repro.crawler.records import (
    CallRecord,
    FrameRecord,
    ScriptSourceRecord,
    SiteVisit,
)
from repro.policy.allow_attr import DelegationDirectiveKind
from repro.policy.allowlist import DirectiveClass
from repro.registry.features import DEFAULT_REGISTRY


def make_frame(frame_id, url, *, parent=None, depth=0, is_local=False,
               headers=None, allow=None):
    from repro.policy.origin import Origin
    origin = Origin.parse(url) if not is_local else Origin.opaque_origin()
    attrs = None
    if parent is not None:
        attrs = {"src": url}
        if allow:
            attrs["allow"] = allow
    return FrameRecord(
        frame_id=frame_id, url=url, origin=origin.serialize(),
        site=origin.site, parent_id=parent, depth=depth, is_local=is_local,
        headers={k.lower(): v for k, v in (headers or {}).items()},
        iframe_attributes=attrs)


def make_call(frame_id, api, kind, permissions=(), args=(), script=None):
    return CallRecord(frame_id=frame_id, api=api, kind=kind,
                      permissions=tuple(permissions), args=tuple(args),
                      script_url=script, allowed=True)


def make_visit(rank, frames, calls=(), scripts=()):
    return SiteVisit(rank=rank, requested_url=frames[0].url,
                     final_url=frames[0].url, success=True,
                     frames=list(frames), calls=list(calls),
                     scripts=list(scripts))


class TestParties:
    def test_none_is_first_party(self):
        assert script_party(None, "a.com") is Party.FIRST

    def test_same_site_first_party(self):
        assert script_party("https://cdn.a.com/x.js", "a.com") is Party.FIRST

    def test_cross_site_third_party(self):
        assert script_party("https://t.example/x.js", "a.com") is Party.THIRD

    def test_local_frame_url_scripts_are_third_party(self):
        assert script_party("https://t.example/x.js", "") is Party.THIRD

    def test_local_frame_inline_first_party(self):
        assert script_party(None, "") is Party.FIRST


class TestUsageCounting:
    def test_first_occurrence_per_frame_dedup(self):
        """Repeated invocations of the same permission in one frame count
        once (Section 4.1: outliers must not inflate results)."""
        frames = [make_frame(0, "https://a.com")]
        calls = [make_call(0, "navigator.getBattery", "invoke", ["battery"])
                 for _ in range(10)]
        usage = UsageAnalysis([make_visit(0, frames, calls)])
        assert usage.invocation_stats["battery"].top_contexts == 1

    def test_same_permission_in_two_frames_counts_twice(self):
        frames = [make_frame(0, "https://a.com"),
                  make_frame(1, "https://b.com/w", parent=0, depth=1)]
        calls = [make_call(0, "navigator.getBattery", "invoke", ["battery"]),
                 make_call(1, "navigator.getBattery", "invoke", ["battery"])]
        usage = UsageAnalysis([make_visit(0, frames, calls)])
        stats = usage.invocation_stats["battery"]
        assert stats.top_contexts == 1
        assert stats.embedded_contexts == 1
        assert stats.total_contexts == 2

    def test_both_parties_counted_once_overall(self):
        """Paper Table 4: if 1p and 3p invoke in the same context, it counts
        once overall but contributes to both party columns."""
        frames = [make_frame(0, "https://a.com")]
        calls = [
            make_call(0, "navigator.getBattery", "invoke", ["battery"],
                      script="https://a.com/own.js"),
            make_call(0, "navigator.getBattery", "invoke", ["battery"],
                      script="https://t.example/3p.js"),
        ]
        usage = UsageAnalysis([make_visit(0, frames, calls)])
        stats = usage.invocation_stats["battery"]
        assert stats.top_contexts == 1
        assert stats.top_first_party == 1
        assert stats.top_third_party == 1

    def test_general_api_row_and_all_permissions_check(self):
        frames = [make_frame(0, "https://a.com")]
        calls = [make_call(0, "document.featurePolicy.allowedFeatures",
                           "general")]
        usage = UsageAnalysis([make_visit(0, frames, calls)])
        assert usage.invocation_stats[GENERAL_ROW].top_contexts == 1
        assert usage.check_stats[ALL_PERMISSIONS_ROW].websites == 1
        assert usage.sites_feature_policy_api == 1

    def test_query_counts_as_specific_check(self):
        frames = [make_frame(0, "https://a.com")]
        calls = [make_call(0, "navigator.permissions.query", "status-check",
                           ["camera"], args=["camera"])]
        usage = UsageAnalysis([make_visit(0, frames, calls)])
        assert usage.check_stats["camera"].websites == 1
        assert usage.invocation_stats[GENERAL_ROW].top_contexts == 1
        assert usage.mean_permissions_checked == 1.0

    def test_static_matches_camera_and_microphone_together(self):
        permissions, general = static_matches(
            "navigator.mediaDevices.getUserMedia({})", DEFAULT_REGISTRY)
        assert {"camera", "microphone"} <= permissions
        assert not general

    def test_static_not_matching_uninstrumented(self):
        """autoplay is not in the instrumented A.4 list: its API string must
        not produce a static detection."""
        permissions, _ = static_matches("HTMLMediaElement.play()",
                                        DEFAULT_REGISTRY)
        assert "autoplay" not in permissions

    def test_static_site_counting(self):
        frames = [make_frame(0, "https://a.com")]
        scripts = [ScriptSourceRecord(0, "https://a.com/x.js",
                                      "navigator.geolocation.getCurrentPosition")]
        usage = UsageAnalysis([make_visit(0, frames, scripts=scripts)])
        assert usage.static_stats["geolocation"].websites == 1
        assert usage.sites_any_static == 1
        assert usage.sites_any_functionality == 1
        assert usage.sites_any_invocation == 0

    def test_share_denominator_includes_redirect_hops(self):
        frames = [make_frame(0, "https://a.com")]
        calls = [make_call(0, "navigator.getBattery", "invoke", ["battery"])]
        visit = make_visit(0, frames, calls)
        visit.top_level_document_count = 2
        usage = UsageAnalysis([visit])
        assert usage.share_any_invocation == 0.5


class TestDelegationCounting:
    def _visit(self, allow="camera", url="https://widget.example/w"):
        frames = [make_frame(0, "https://a.com"),
                  make_frame(1, url, parent=0, depth=1, allow=allow)]
        return make_visit(0, frames)

    def test_external_delegation_counted(self):
        analysis = DelegationAnalysis([self._visit()])
        assert analysis.sites_delegating == 1
        assert analysis.sites_delegating_external == 1
        table = analysis.delegated_permission_table()
        assert table[0].permission == "camera"
        assert table[0].websites == 1

    def test_same_site_delegation_not_external(self):
        analysis = DelegationAnalysis(
            [self._visit(url="https://sub.a.com/w")])
        assert analysis.sites_delegating == 1
        assert analysis.sites_delegating_external == 0

    def test_none_opt_out_not_a_delegation(self):
        analysis = DelegationAnalysis([self._visit(allow="camera 'none'")])
        assert analysis.sites_delegating == 0
        assert analysis.directive_kinds[DelegationDirectiveKind.NONE] == 1

    def test_nested_iframes_ignored(self):
        """Paper 4.2: only directly inserted embedded documents count."""
        frames = [make_frame(0, "https://a.com"),
                  make_frame(1, "https://b.com/w", parent=0, depth=1),
                  make_frame(2, "https://c.com/n", parent=1, depth=2,
                             allow="camera")]
        analysis = DelegationAnalysis([make_visit(0, frames)])
        assert analysis.sites_delegating == 0

    def test_directive_distribution(self):
        analysis = DelegationAnalysis(
            [self._visit(allow="camera; microphone *")])
        distribution = analysis.directive_distribution()
        assert distribution[DelegationDirectiveKind.DEFAULT_SRC] == 0.5
        assert distribution[DelegationDirectiveKind.STAR] == 0.5

    def test_embedded_ranking(self):
        visits = [self._visit() for _ in range(3)]
        for index, visit in enumerate(visits):
            visit.rank = index
        analysis = DelegationAnalysis(visits)
        ranking = analysis.embedded_site_ranking()
        assert ranking[0].site == "widget.example"
        assert ranking[0].websites == 3
        assert analysis.delegation_rate_for_site("widget.example") == 1.0


class TestHeaderAnalysis:
    def test_adoption_counts(self):
        visits = [
            make_visit(0, [make_frame(0, "https://a.com",
                                      headers={"Permissions-Policy":
                                               "camera=()"})]),
            make_visit(1, [make_frame(0, "https://b.com")]),
        ]
        analysis = HeaderAnalysis(visits)
        adoption = analysis.adoption()
        assert adoption.pp_top_level_docs == 1
        assert adoption.pp_top_level_share == 0.5

    def test_local_frames_excluded_from_denominator(self):
        frames = [make_frame(0, "https://a.com"),
                  make_frame(1, "data:x", parent=0, depth=1, is_local=True)]
        analysis = HeaderAnalysis([make_visit(0, frames)])
        assert analysis.non_local_docs == 1

    def test_syntax_error_header_counted_and_skipped(self):
        visit = make_visit(0, [make_frame(
            0, "https://a.com",
            headers={"Permissions-Policy": "camera=(),"})])
        analysis = HeaderAnalysis([visit])
        assert analysis.syntax_error_top_level_sites == 1
        assert analysis.valid_top_level_headers == 0

    def test_directive_classification(self):
        visit = make_visit(0, [make_frame(
            0, "https://a.com",
            headers={"Permissions-Policy":
                     'camera=(), geolocation=(self), usb=*'})])
        analysis = HeaderAnalysis([visit])
        shares = analysis.top_level_class_shares()
        assert shares[DirectiveClass.DISABLE] == pytest.approx(1 / 3)
        assert shares[DirectiveClass.SELF] == pytest.approx(1 / 3)
        assert shares[DirectiveClass.STAR] == pytest.approx(1 / 3)
        assert analysis.average_permissions_per_header() == 3

    def test_powerful_share(self):
        visit = make_visit(0, [make_frame(
            0, "https://a.com",
            headers={"Permissions-Policy": "camera=(), gamepad=*"})])
        analysis = HeaderAnalysis([visit])
        assert analysis.powerful_disable_or_self_share() == 1.0

    def test_semantic_issue_requires_error_severity(self):
        """A star directive alone is a warning, not a misconfiguration."""
        ok = make_visit(0, [make_frame(
            0, "https://a.com", headers={"Permissions-Policy": "usb=*"})])
        bad = make_visit(1, [make_frame(
            0, "https://b.com",
            headers={"Permissions-Policy": "camera=(none)"})])
        analysis = HeaderAnalysis([ok, bad])
        assert analysis.semantic_issue_top_level_sites == 1


class TestOverPermission:
    def _widget_visits(self, count, *, allow, activity_calls=(),
                       activity_sources=()):
        visits = []
        for rank in range(count):
            frames = [make_frame(0, f"https://site{rank}.com"),
                      make_frame(1, "https://widget.example/w", parent=0,
                                 depth=1, allow=allow)]
            calls = [make_call(1, api, "invoke", perms)
                     for api, perms in activity_calls]
            scripts = [ScriptSourceRecord(1, "https://widget.example/w.js",
                                          source)
                       for source in activity_sources]
            visits.append(make_visit(rank, frames, calls, scripts))
        return visits

    def test_unused_delegation_flagged(self):
        visits = self._widget_visits(20, allow="camera; microphone")
        analysis = OverPermissionAnalysis(visits)
        rows = analysis.unused_delegations()
        assert rows
        assert rows[0].site == "widget.example"
        assert set(rows[0].unused_permissions) == {"camera", "microphone"}
        assert rows[0].affected_websites == 20

    def test_dynamic_activity_clears_flag(self):
        visits = self._widget_visits(
            20, allow="camera",
            activity_calls=[("navigator.mediaDevices.getUserMedia",
                             ("camera",))])
        assert OverPermissionAnalysis(visits).unused_delegations() == []

    def test_static_activity_clears_flag(self):
        visits = self._widget_visits(
            20, allow="camera",
            activity_sources=["navigator.mediaDevices.getUserMedia"])
        assert OverPermissionAnalysis(visits).unused_delegations() == []

    def test_prevalence_threshold_filters_one_offs(self):
        """A permission delegated on < 5 % of occurrences is noise."""
        visits = self._widget_visits(1, allow="camera")
        visits += self._widget_visits(30, allow=None)[0:0]  # no-op clarity
        for rank in range(1, 31):
            frames = [make_frame(0, f"https://other{rank}.com"),
                      make_frame(1, "https://widget.example/w", parent=0,
                                 depth=1)]
            visits.append(make_visit(rank, frames))
        analysis = OverPermissionAnalysis(visits)
        assert analysis.unused_delegations() == []

    def test_uninstrumented_permission_never_flagged(self):
        """autoplay usage is unobservable — absence of evidence must not
        flag it."""
        visits = self._widget_visits(20, allow="autoplay")
        assert OverPermissionAnalysis(visits).unused_delegations() == []

    def test_case_study_output(self):
        visits = self._widget_visits(
            20, allow="clipboard-read; camera *; microphone *")
        analysis = OverPermissionAnalysis(visits)
        study = analysis.case_study("widget.example")
        assert study["delegation_rate"] == 1.0
        assert set(study["unused_delegations"]) == {
            "camera", "clipboard-read", "microphone"}
        assert study["overpermissioned_websites"] == 20

    def test_threshold_parameter(self):
        visits = self._widget_visits(2, allow="camera")
        for rank in range(2, 30):
            frames = [make_frame(0, f"https://o{rank}.com"),
                      make_frame(1, "https://widget.example/w", parent=0,
                                 depth=1)]
            visits.append(make_visit(rank, frames))
        strict = OverPermissionAnalysis(visits, prevalence_threshold=0.01)
        lax = OverPermissionAnalysis(visits, prevalence_threshold=0.2)
        assert strict.unused_delegations()
        assert lax.unused_delegations() == []
