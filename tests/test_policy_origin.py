"""Tests for the origin / site model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.policy.origin import (
    LOCAL_SCHEMES,
    Origin,
    OriginParseError,
    public_suffix,
    registrable_domain,
    site_of,
)


class TestOriginParsing:
    def test_simple_https(self):
        origin = Origin.parse("https://example.org/path?q=1")
        assert origin.scheme == "https"
        assert origin.host == "example.org"
        assert origin.port is None

    def test_default_port_normalized(self):
        assert Origin.parse("https://example.org:443").port is None
        assert Origin.parse("http://example.org:80").port is None

    def test_non_default_port_kept(self):
        assert Origin.parse("https://example.org:8443").port == 8443

    def test_host_lowercased(self):
        assert Origin.parse("https://EXAMPLE.ORG").host == "example.org"

    @pytest.mark.parametrize("scheme", sorted(LOCAL_SCHEMES))
    def test_local_schemes_are_opaque(self, scheme):
        origin = Origin.parse(f"{scheme}:whatever")
        assert origin.opaque
        assert origin.is_local_scheme
        assert origin.serialize() == "null"

    @pytest.mark.parametrize("bad", ["", "no-scheme-here", "https://", "https://:80"])
    def test_invalid_urls_rejected(self, bad):
        with pytest.raises(OriginParseError):
            Origin.parse(bad)

    def test_invalid_port_rejected(self):
        with pytest.raises(OriginParseError):
            Origin.parse("https://example.org:99999999")


class TestSameOriginSameSite:
    def test_same_origin(self):
        a = Origin.parse("https://example.org")
        b = Origin.parse("https://example.org/other")
        assert a.same_origin(b)

    def test_different_scheme_not_same_origin(self):
        assert not Origin.parse("http://a.com").same_origin(
            Origin.parse("https://a.com"))

    def test_different_port_not_same_origin(self):
        assert not Origin.parse("https://a.com:8443").same_origin(
            Origin.parse("https://a.com"))

    def test_opaque_same_origin_by_identity_only(self):
        """Opaque origins behave like browser-internal ones: same-origin
        with themselves, never with another (even equal-looking) opaque
        origin or any tuple origin."""
        opaque = Origin.opaque_origin()
        assert opaque.same_origin(opaque)
        assert not opaque.same_origin(Origin.opaque_origin())
        assert not opaque.same_origin(Origin.parse("https://a.com"))

    def test_subdomain_same_site_not_same_origin(self):
        a = Origin.parse("https://cdn.example.org")
        b = Origin.parse("https://www.example.org")
        assert not a.same_origin(b)
        assert a.same_site(b)

    def test_cross_site(self):
        assert not Origin.parse("https://a.com").same_site(
            Origin.parse("https://b.com"))

    def test_multi_label_suffix_not_same_site(self):
        """a.co.uk and b.co.uk are different sites — co.uk is a suffix."""
        assert not Origin.parse("https://a.co.uk").same_site(
            Origin.parse("https://b.co.uk"))

    def test_platform_suffixes(self):
        """user1.github.io and user2.github.io are different sites."""
        assert not Origin.parse("https://user1.github.io").same_site(
            Origin.parse("https://user2.github.io"))


class TestRegistrableDomain:
    @pytest.mark.parametrize("host,expected", [
        ("example.org", "example.org"),
        ("www.example.org", "example.org"),
        ("a.b.c.example.org", "example.org"),
        ("example.co.uk", "example.co.uk"),
        ("shop.example.co.uk", "example.co.uk"),
        ("user.github.io", "user.github.io"),
        ("deep.user.github.io", "user.github.io"),
        ("localhost", "localhost"),
        ("192.168.1.1", "192.168.1.1"),
    ])
    def test_registrable_domain(self, host, expected):
        assert registrable_domain(host) == expected

    def test_public_suffix(self):
        assert public_suffix("www.example.co.uk") == "co.uk"
        assert public_suffix("www.example.org") == "org"

    def test_site_of_url(self):
        assert site_of("https://cdn.shop.example.com/x.js") == "example.com"

    def test_site_of_opaque_is_empty(self):
        assert site_of("data:text/html,hi") == ""

    def test_trailing_dot_stripped(self):
        assert registrable_domain("example.org.") == "example.org"


class TestOriginProperties:
    @given(st.sampled_from(["http", "https"]),
           st.from_regex(r"[a-z]{1,10}(\.[a-z]{2,8}){1,3}", fullmatch=True),
           st.integers(min_value=1, max_value=65535))
    def test_parse_serialize_roundtrip(self, scheme, host, port):
        url = f"{scheme}://{host}:{port}"
        origin = Origin.parse(url)
        again = Origin.parse(origin.serialize())
        assert origin.same_origin(again)

    @given(st.from_regex(r"[a-z]{1,8}(\.[a-z]{1,8}){0,4}\.[a-z]{2,6}",
                         fullmatch=True))
    def test_registrable_domain_is_suffix_of_host(self, host):
        domain = registrable_domain(host)
        assert host == domain or host.endswith("." + domain)

    @given(st.from_regex(r"[a-z]{1,8}(\.[a-z]{1,8}){0,4}\.[a-z]{2,6}",
                         fullmatch=True))
    def test_registrable_domain_idempotent(self, host):
        domain = registrable_domain(host)
        assert registrable_domain(domain) == domain

    def test_str_matches_serialize(self):
        origin = Origin.parse("https://example.org:444")
        assert str(origin) == origin.serialize() == "https://example.org:444"


class TestMalformedUrls:
    @pytest.mark.parametrize("bad", [
        "https://0\r[",      # unbalanced IPv6 bracket (hypothesis find)
        "https://[::1",      # unterminated bracket
        "http://[",
    ])
    def test_bracket_garbage_raises_origin_error(self, bad):
        """urlsplit's raw ValueError must not leak past Origin.parse."""
        with pytest.raises(OriginParseError):
            Origin.parse(bad)
