"""Tests for the permission catalogue (paper Table 2 / Appendix A.4)."""

import pytest

from repro.registry.features import (
    DEFAULT_REGISTRY,
    FEATURE_POLICY_APIS,
    GENERAL_PERMISSION_APIS,
    DefaultAllowlist,
    Permission,
    PermissionCategory,
    PermissionRegistry,
    UnknownPermissionError,
)


class TestTable2Characteristics:
    """The paper's Table 2 rows must hold exactly."""

    def test_camera_is_powerful_policy_controlled_self(self):
        camera = DEFAULT_REGISTRY.get("camera")
        assert camera.powerful
        assert camera.policy_controlled
        assert camera.default_allowlist is DefaultAllowlist.SELF

    def test_geolocation_is_powerful_policy_controlled_self(self):
        geo = DEFAULT_REGISTRY.get("geolocation")
        assert geo.powerful
        assert geo.policy_controlled
        assert geo.default_allowlist is DefaultAllowlist.SELF

    def test_gamepad_is_policy_controlled_not_powerful_star(self):
        gamepad = DEFAULT_REGISTRY.get("gamepad")
        assert not gamepad.powerful
        assert gamepad.policy_controlled
        assert gamepad.default_allowlist is DefaultAllowlist.STAR

    def test_notifications_is_powerful_not_policy_controlled(self):
        notifications = DEFAULT_REGISTRY.get("notifications")
        assert notifications.powerful
        assert not notifications.policy_controlled
        assert notifications.default_allowlist is None

    def test_push_is_powerful_not_policy_controlled(self):
        push = DEFAULT_REGISTRY.get("push")
        assert push.powerful
        assert not push.policy_controlled


class TestCatalogueCoverage:
    def test_appendix_a4_permissions_present(self):
        """Every permission from Appendix A.4 is registered."""
        appendix_a4 = [
            "accelerometer", "ambient-light-sensor", "battery", "bluetooth",
            "browsing-topics", "camera", "clipboard-read", "clipboard-write",
            "compute-pressure", "direct-sockets", "display-capture",
            "encrypted-media", "gamepad", "geolocation", "gyroscope", "hid",
            "idle-detection", "keyboard-lock", "keyboard-map", "local-fonts",
            "magnetometer", "microphone", "midi", "notifications", "payment",
            "pointer-lock", "publickey-credentials-create",
            "publickey-credentials-get", "push", "screen-wake-lock", "serial",
            "speaker-selection", "storage-access", "system-wake-lock",
            "top-level-storage-access", "usb", "web-share",
            "window-management", "xr-spatial-tracking",
        ]
        for name in appendix_a4:
            assert name in DEFAULT_REGISTRY, name

    def test_result_table_permissions_present(self):
        """Permissions named only in result tables are also registered."""
        for name in ["attribution-reporting", "run-ad-auction",
                     "join-ad-interest-group", "autoplay",
                     "picture-in-picture", "fullscreen", "sync-xhr",
                     "interest-cohort", "identity-credentials-get",
                     "otp-credentials", "vr"]:
            assert name in DEFAULT_REGISTRY, name

    def test_picture_in_picture_defaults_to_star(self):
        """Paper 4.2.1: delegating picture-in-picture is unnecessary because
        its default allowlist is *."""
        pip = DEFAULT_REGISTRY.get("picture-in-picture")
        assert pip.default_allowlist is DefaultAllowlist.STAR

    def test_every_policy_controlled_permission_has_allowlist(self):
        for perm in DEFAULT_REGISTRY.policy_controlled():
            assert perm.default_allowlist in (DefaultAllowlist.SELF,
                                              DefaultAllowlist.STAR)

    def test_every_permission_has_api_patterns(self):
        for perm in DEFAULT_REGISTRY:
            assert perm.api_patterns, f"{perm.name} lacks API patterns"


class TestRegistryBehaviour:
    def test_unknown_permission_raises(self):
        with pytest.raises(UnknownPermissionError):
            DEFAULT_REGISTRY.get("does-not-exist")

    def test_maybe_returns_none_for_unknown(self):
        assert DEFAULT_REGISTRY.maybe("does-not-exist") is None

    def test_contains(self):
        assert "camera" in DEFAULT_REGISTRY
        assert "nope" not in DEFAULT_REGISTRY

    def test_len_and_iteration_agree(self):
        assert len(list(DEFAULT_REGISTRY)) == len(DEFAULT_REGISTRY)

    def test_names_are_unique(self):
        names = DEFAULT_REGISTRY.names()
        assert len(names) == len(set(names))

    def test_powerful_subset_of_catalogue(self):
        powerful = set(p.name for p in DEFAULT_REGISTRY.powerful())
        assert {"camera", "microphone", "geolocation",
                "notifications"} <= powerful
        assert "gamepad" not in powerful

    def test_by_category(self):
        ads = DEFAULT_REGISTRY.by_category(PermissionCategory.ADS)
        assert any(p.name == "browsing-topics" for p in ads)

    def test_default_allowlist_helper(self):
        assert DEFAULT_REGISTRY.default_allowlist("camera") is DefaultAllowlist.SELF
        with pytest.raises(ValueError):
            DEFAULT_REGISTRY.default_allowlist("notifications")

    def test_duplicate_names_rejected(self):
        camera = DEFAULT_REGISTRY.get("camera")
        with pytest.raises(ValueError):
            PermissionRegistry([camera, camera])

    def test_match_api_finds_camera_for_getusermedia(self):
        matched = {p.name for p in
                   DEFAULT_REGISTRY.match_api("navigator.mediaDevices.getUserMedia({video:1})")}
        assert "camera" in matched and "microphone" in matched

    def test_match_api_empty_for_plain_code(self):
        assert DEFAULT_REGISTRY.match_api("console.log('hi')") == ()


class TestPermissionValidation:
    def test_policy_controlled_requires_allowlist(self):
        with pytest.raises(ValueError):
            Permission("x", True, False, None, PermissionCategory.OTHER)

    def test_non_policy_controlled_rejects_allowlist(self):
        with pytest.raises(ValueError):
            Permission("x", False, False, DefaultAllowlist.SELF,
                       PermissionCategory.OTHER)

    def test_delegatable_mirrors_policy_controlled(self):
        assert DEFAULT_REGISTRY.get("camera").delegatable
        assert not DEFAULT_REGISTRY.get("notifications").delegatable


class TestGeneralApis:
    def test_general_apis_include_permissions_query(self):
        assert "navigator.permissions.query" in GENERAL_PERMISSION_APIS

    def test_feature_policy_apis_are_subset(self):
        assert set(FEATURE_POLICY_APIS) <= set(GENERAL_PERMISSION_APIS)
        assert all("featurePolicy" in api for api in FEATURE_POLICY_APIS)
