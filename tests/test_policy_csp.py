"""Tests for the CSP frame-src model (attack precondition, paper 6.2)."""

import pytest

from repro.policy.csp import (
    ContentSecurityPolicy,
    SourceExpression,
    local_scheme_attack_possible,
)
from repro.policy.origin import Origin

SELF = Origin.parse("https://example.org")


class TestSourceExpressions:
    def test_star_matches_network_not_data(self):
        star = SourceExpression.parse("*")
        assert star.matches("https://anything.example", self_origin=SELF)
        assert not star.matches("data:text/html,x", self_origin=SELF)

    def test_none_matches_nothing(self):
        none = SourceExpression.parse("'none'")
        assert not none.matches("https://example.org", self_origin=SELF)

    def test_self_matches_own_origin(self):
        self_src = SourceExpression.parse("'self'")
        assert self_src.matches("https://example.org/page", self_origin=SELF)
        assert not self_src.matches("https://other.com", self_origin=SELF)

    def test_scheme_source_matches_data(self):
        data_src = SourceExpression.parse("data:")
        assert data_src.matches("data:text/html,x", self_origin=SELF)
        assert not data_src.matches("https://a.com", self_origin=SELF)

    def test_host_source(self):
        host = SourceExpression.parse("https://widget.net")
        assert host.matches("https://widget.net/embed", self_origin=SELF)
        assert not host.matches("https://evil.net", self_origin=SELF)

    def test_wildcard_host(self):
        wild = SourceExpression.parse("*.example.org")
        assert wild.matches("https://cdn.example.org", self_origin=SELF)
        assert wild.matches("https://example.org", self_origin=SELF)
        assert not wild.matches("https://example.com", self_origin=SELF)

    def test_garbage_matches_nothing(self):
        garbage = SourceExpression.parse("%%%")
        assert not garbage.matches("https://a.com", self_origin=SELF)


class TestFallbackChain:
    def test_frame_src_preferred(self):
        csp = ContentSecurityPolicy.parse(
            "default-src 'none'; frame-src https://a.com")
        assert csp.governing_directive() == "frame-src"
        assert csp.allows_frame("https://a.com", self_origin=SELF)

    def test_child_src_fallback(self):
        csp = ContentSecurityPolicy.parse(
            "default-src 'none'; child-src 'self'")
        assert csp.governing_directive() == "child-src"

    def test_default_src_fallback(self):
        csp = ContentSecurityPolicy.parse("default-src 'self'")
        assert csp.governing_directive() == "default-src"
        assert csp.allows_frame("https://example.org/x", self_origin=SELF)
        assert not csp.allows_frame("https://other.com", self_origin=SELF)

    def test_script_only_policy_does_not_constrain_frames(self):
        csp = ContentSecurityPolicy.parse("script-src 'self'")
        assert not csp.constrains_frames

    def test_bare_directive_means_none(self):
        csp = ContentSecurityPolicy.parse("frame-src")
        assert not csp.allows_frame("https://a.com", self_origin=SELF)


class TestAttackPrecondition:
    """Paper 6.2: the local-scheme bypass needs a CSP that does not
    constrain frames."""

    def test_no_csp_leaves_attack_open(self):
        assert local_scheme_attack_possible(None, self_origin=SELF)

    def test_script_src_only_csp_leaves_attack_open(self):
        """The paper's exact scenario: strict XSS mitigation without a
        frame-src directive."""
        csp = ContentSecurityPolicy.parse("script-src 'self'; object-src 'none'")
        assert local_scheme_attack_possible(csp, self_origin=SELF)

    def test_frame_src_none_blocks_attack(self):
        csp = ContentSecurityPolicy.parse("frame-src 'none'")
        assert not local_scheme_attack_possible(csp, self_origin=SELF)

    def test_frame_src_self_blocks_data_iframes(self):
        csp = ContentSecurityPolicy.parse("frame-src 'self'")
        assert not local_scheme_attack_possible(csp, self_origin=SELF)

    def test_explicit_data_scheme_allows_attack(self):
        csp = ContentSecurityPolicy.parse("frame-src 'self' data:")
        assert local_scheme_attack_possible(csp, self_origin=SELF)

    def test_star_frame_src_blocks_data(self):
        """CSP3: `*` does not match data: — an explicit scheme is needed."""
        csp = ContentSecurityPolicy.parse("frame-src *")
        assert not local_scheme_attack_possible(csp, self_origin=SELF)
