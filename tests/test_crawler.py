"""Tests for the crawler: fetcher, visit protocol, pool, storage."""

import pytest

from repro.crawler.crawler import CrawlConfig, Crawler
from repro.crawler.errors import UnreachableError
from repro.crawler.fetcher import SyntheticFetcher
from repro.crawler.interaction import InteractionConfig, InteractiveCrawler
from repro.crawler.pool import CrawlerPool
from repro.crawler.storage import CrawlStore, export_jsonl
from repro.synthweb.generator import FailureMode, SyntheticWeb


@pytest.fixture(scope="module")
def web() -> SyntheticWeb:
    return SyntheticWeb(400, seed=2024)


@pytest.fixture(scope="module")
def dataset(web):
    return CrawlerPool(web, workers=1).run()


class TestFetcher:
    def test_fetch_site(self, web):
        fetcher = SyntheticFetcher(web)
        ok_rank = next(r for r in range(400)
                       if web.site(r).failure is FailureMode.NONE)
        response = fetcher.fetch(web.origin_for_rank(ok_rank))
        assert response.status == 200

    def test_fetch_unknown_host_raises(self, web):
        with pytest.raises(UnreachableError):
            SyntheticFetcher(web).fetch("https://unknown-host.example")

    def test_failure_modes_raise_typed_errors(self, web):
        fetcher = SyntheticFetcher(web)
        for rank in range(400):
            spec = web.site(rank)
            if spec.failure is FailureMode.NONE:
                continue
            with pytest.raises(Exception) as excinfo:
                fetcher.fetch(spec.url)
            assert getattr(excinfo.value, "taxonomy", None) == spec.failure.value
            return
        pytest.skip("no failing site in sample")

    def test_widget_urls_resolve(self, web):
        fetcher = SyntheticFetcher(web)
        response = fetcher.fetch("https://youtube.com/embed/v")
        assert response.content.scripts
        assert "permissions-policy" in {
            k.lower() for k in response.headers}

    def test_partner_urls_resolve(self, web):
        response = SyntheticFetcher(web).fetch("https://partner-3.example/w1")
        assert response.content.scripts

    def test_www_redirect_target_resolves(self, web):
        fetcher = SyntheticFetcher(web)
        redirecting = next((r for r in range(400)
                            if web.site(r).redirect_to
                            and web.site(r).failure is FailureMode.NONE
                            and "www." in (web.site(r).redirect_to or "")),
                           None)
        if redirecting is None:
            pytest.skip("no www-redirecting site in sample")
        spec = web.site(redirecting)
        response = fetcher.fetch(spec.url)
        assert response.redirect_chain == (spec.url,)
        again = fetcher.fetch(response.url)  # the www URL itself resolves
        assert again.redirect_chain == ()


class TestCrawler:
    def test_visit_never_raises(self, web):
        crawler = Crawler(SyntheticFetcher(web))
        for rank in range(30):
            visit = crawler.visit(web.origin_for_rank(rank), rank=rank)
            assert visit.rank == rank
            assert visit.success == (web.site(rank).failure is FailureMode.NONE)

    def test_successful_visit_has_frames_and_scripts(self, dataset):
        visit = next(v for v in dataset.successful())
        assert visit.frames
        assert visit.top_frame.is_top_level
        assert visit.scripts

    def test_timeout_visit_duration_matches_budget(self, web):
        crawler = Crawler(SyntheticFetcher(web))
        timing_out = next((r for r in range(400)
                           if web.site(r).failure is FailureMode.TIMEOUT), None)
        if timing_out is None:
            pytest.skip("no timeout site in sample")
        visit = crawler.visit(web.origin_for_rank(timing_out), rank=timing_out)
        assert visit.duration_seconds == CrawlConfig().load_timeout_seconds

    def test_iframe_attributes_collected(self, dataset):
        for visit in dataset.successful():
            for frame in visit.embedded_frames():
                if frame.iframe_attributes and "allow" in frame.iframe_attributes:
                    assert frame.allow_attribute
                    return
        pytest.skip("no delegated iframe in sample")


class TestPool:
    def test_parallel_equals_serial(self, web):
        serial = CrawlerPool(web, workers=1).run(range(60))
        parallel = CrawlerPool(web, workers=4).run(range(60))
        assert [v.rank for v in serial.visits] == [v.rank for v in parallel.visits]
        assert [v.success for v in serial.visits] == [
            v.success for v in parallel.visits]
        assert ([len(v.calls) for v in serial.visits]
                == [len(v.calls) for v in parallel.visits])

    def test_failure_summary_taxonomy_keys(self, dataset):
        summary = dataset.failure_summary()
        valid = {mode.value for mode in FailureMode}
        assert set(summary) <= valid

    def test_counts_consistent(self, dataset):
        assert dataset.attempted == 400
        assert dataset.successful_count == len(dataset.successful())
        assert dataset.total_frame_count == (
            dataset.top_level_document_count + dataset.embedded_document_count)

    def test_invalid_worker_count(self, web):
        with pytest.raises(ValueError):
            CrawlerPool(web, workers=0)


class TestInteraction:
    def test_interactive_crawl_observes_gated_calls(self, web):
        fetcher = SyntheticFetcher(web)
        plain = Crawler(SyntheticFetcher(web))
        interactive = InteractiveCrawler(fetcher)
        more = 0
        for rank in range(80):
            if web.site(rank).failure is not FailureMode.NONE:
                continue
            url = web.origin_for_rank(rank)
            baseline = plain.visit(url, rank=rank)
            with_clicks = interactive.visit(url, rank=rank)
            assert len(with_clicks.calls) >= len(baseline.calls)
            if len(with_clicks.calls) > len(baseline.calls):
                more += 1
        assert more > 0, "interaction should unlock additional calls somewhere"

    def test_interaction_config_gates(self):
        config = InteractionConfig(click=True, navigation=False, login=True)
        assert config.unlocked_gates() == frozenset({"click", "login"})


class TestStorage:
    def test_sqlite_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "crawl.sqlite"
        with CrawlStore(path) as store:
            store.save_dataset(dataset)
        with CrawlStore(path) as store:
            loaded = store.load_dataset()
        assert loaded.attempted == dataset.attempted
        assert loaded.successful_count == dataset.successful_count
        original = dataset.successful()[0]
        restored = next(v for v in loaded.visits if v.rank == original.rank)
        assert len(restored.frames) == len(original.frames)
        assert len(restored.calls) == len(original.calls)
        assert restored.frames[0].headers == original.frames[0].headers

    def test_incremental_save_overwrites(self, dataset, tmp_path):
        path = tmp_path / "crawl.sqlite"
        visit = dataset.successful()[0]
        with CrawlStore(path) as store:
            store.save_visit(visit)
            store.save_visit(visit)  # idempotent
            loaded = store.load_dataset()
        assert len(loaded.visits) == 1
        assert len(loaded.visits[0].frames) == len(visit.frames)

    def test_jsonl_export(self, dataset, tmp_path):
        path = tmp_path / "out.jsonl"
        count = export_jsonl(dataset.visits[:10], path)
        assert count == 10
        lines = path.read_text().strip().splitlines()
        # 10 records plus the count trailer; no leftover .tmp sibling.
        assert len(lines) == 11
        assert "__repro_jsonl_trailer__" in lines[-1]
        assert not list(tmp_path.glob("*.tmp"))


class TestSqlAggregates:
    """The SQL-side aggregates must agree with the in-memory analyses."""

    @pytest.fixture(scope="class")
    def store(self, dataset, tmp_path_factory):
        path = tmp_path_factory.mktemp("sql") / "crawl.sqlite"
        with CrawlStore(path) as writer:
            writer.save_dataset(dataset)
        with CrawlStore(path) as reader:
            yield reader

    def test_count_successful(self, store, dataset):
        assert store.count_successful() == dataset.successful_count

    def test_failure_counts(self, store, dataset):
        assert store.failure_counts() == dataset.failure_summary()

    def test_header_sites_matches_analysis(self, store, dataset):
        from repro.analysis.headers import HeaderAnalysis
        analysis = HeaderAnalysis(dataset.successful())
        in_memory = sum(
            1 for visit in dataset.successful()
            if visit.top_frame.header("permissions-policy") is not None)
        assert store.count_header_sites() == in_memory

    def test_top_embedded_sites_match_analysis(self, store, dataset):
        from repro.analysis.delegation import DelegationAnalysis
        analysis = DelegationAnalysis(dataset.successful())
        sql_ranking = store.top_embedded_sites(5)
        memory_ranking = [(row.site, row.websites)
                          for row in analysis.embedded_site_ranking(5)]
        assert sql_ranking == memory_ranking

    def test_delegating_superset(self, store, dataset):
        from repro.analysis.delegation import DelegationAnalysis
        analysis = DelegationAnalysis(dataset.successful())
        assert store.count_delegating_sites() >= analysis.sites_delegating

    @staticmethod
    def _visit_with_headers(rank, headers):
        from repro.crawler.records import FrameRecord, SiteVisit
        url = f"https://site-{rank}.example"
        return SiteVisit(
            rank=rank, requested_url=url, final_url=url, success=True,
            frames=[FrameRecord(
                frame_id=0, url=url, origin=url,
                site=f"site-{rank}.example", parent_id=None, depth=0,
                is_local=False, headers=headers, iframe_attributes=None)])

    @pytest.fixture()
    def hostile_store(self, tmp_path):
        # One real Permissions-Policy sender, plus two sites whose header
        # *values* embed the quoted key string — the exact shape that
        # fooled the old LIKE-substring counter.
        with CrawlStore(tmp_path / "hostile.sqlite") as store:
            store.save_visits([
                self._visit_with_headers(
                    0, {"permissions-policy": "camera=()"}),
                self._visit_with_headers(
                    1, {"x-taunt": 'sends "permissions-policy" never'}),
                self._visit_with_headers(
                    2, {"server": '{"permissions-policy": "fake"}'}),
            ])
            yield store

    def test_header_count_ignores_hostile_values(self, hostile_store):
        assert hostile_store.count_header_sites() == 1

    def test_header_count_fallback_without_json1(self, hostile_store):
        """The LIKE-prefilter + json.loads fallback (no json_each) must
        agree with the JSON1 path."""
        import sqlite3

        real = hostile_store._conn

        class NoJson1:
            def execute(self, sql, *params):
                if "json_each" in sql:
                    raise sqlite3.OperationalError("no such table: json_each")
                return real.execute(sql, *params)

            def __getattr__(self, name):
                return getattr(real, name)

        hostile_store._conn = NoJson1()
        try:
            assert hostile_store.count_header_sites() == 1
        finally:
            hostile_store._conn = real
