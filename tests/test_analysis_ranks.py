"""Tests for rank-stratified analysis."""

import pytest

from repro.analysis.ranks import DEFAULT_BUCKETS, RankBucketAnalysis
from tests.test_analysis import make_frame, make_visit


def visit_at(rank, *, header=None, embed=None, allow=None):
    headers = {"Permissions-Policy": header} if header else {}
    frames = [make_frame(0, f"https://site{rank}.com", headers=headers)]
    if embed:
        frames.append(make_frame(1, f"https://{embed}/w", parent=0, depth=1,
                                 allow=allow))
    visit = make_visit(rank, frames)
    return visit


class TestRankBuckets:
    def test_bucket_assignment(self):
        visits = [visit_at(0, header="camera=()"),      # top 2% of 1000
                  visit_at(500),                        # tail
                  visit_at(999)]                        # tail
        analysis = RankBucketAnalysis(visits, 1000)
        top = analysis.buckets[0]
        tail = analysis.buckets[-1]
        assert top.sites == 1 and top.with_pp_header == 1
        assert tail.sites == 2 and tail.with_pp_header == 0
        assert top.pp_header_share == 1.0

    def test_delegation_counted_per_bucket(self):
        visits = [visit_at(0, embed="widget.example", allow="camera"),
                  visit_at(900, embed="widget.example")]
        analysis = RankBucketAnalysis(visits, 1000)
        assert analysis.buckets[0].delegation_share == 1.0
        assert analysis.buckets[-1].delegation_share == 0.0

    def test_widget_penetration(self):
        visits = [visit_at(0, embed="livechatinc.com"),
                  visit_at(999)]
        analysis = RankBucketAnalysis(visits, 1000)
        penetration = dict(analysis.widget_penetration("livechatinc.com"))
        assert penetration["top 2%"] == 1.0
        assert penetration["tail"] == 0.0

    def test_total_sites_validation(self):
        with pytest.raises(ValueError):
            RankBucketAnalysis([], 0)

    def test_monotone_check_ignores_tiny_buckets(self):
        analysis = RankBucketAnalysis([visit_at(0)], 1000)
        assert analysis.is_adoption_monotone()

    def test_default_buckets_cover_everything(self):
        labels = [label for label, _ in DEFAULT_BUCKETS]
        analysis = RankBucketAnalysis([visit_at(999_999)], 1_000_000)
        assert sum(bucket.sites for bucket in analysis.buckets) == 1
        assert [b.label for b in analysis.buckets] == labels
