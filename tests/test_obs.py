"""Observability layer: tracing, metrics, the stage profiler, the CLI
surface, and the runner/telemetry bugfixes that shipped with it (PR:
end-to-end observability)."""

import json
import sqlite3
import threading

import pytest

import repro.experiments.runner as runner
from repro.analysis.summary import summarize
from repro.crawler.backends import chunk_ranks, CHUNKS_PER_WORKER
from repro.crawler.pool import CrawlerPool
from repro.crawler.storage import CrawlStore, export_jsonl
from repro.crawler.telemetry import CrawlTelemetry
from repro.obs import (
    REGISTRY,
    TRACER,
    MetricsRegistry,
    disable_observability,
    enable_observability,
    observed,
    span,
)
from repro.obs import metrics as obs_metrics
from repro.obs.profile import PipelineProfile, profile_pipeline, write_trace
from repro.obs.tracing import Span, Tracer
from repro.synthweb.generator import SyntheticWeb

SITES = 40


@pytest.fixture(autouse=True)
def pristine_obs_state():
    """Every test starts and ends with observability off and empty."""
    disable_observability()
    TRACER.clear()
    REGISTRY.reset()
    yield
    disable_observability()
    TRACER.clear()
    REGISTRY.reset()


@pytest.fixture(scope="module")
def web():
    return SyntheticWeb(SITES, seed=13)


@pytest.fixture(scope="module")
def plain_dataset(web):
    return CrawlerPool(web, workers=1, backend="serial").run()


def dataset_bytes(dataset, tmp_path, name):
    path = tmp_path / f"{name}.jsonl"
    export_jsonl(dataset.visits, path)
    return path.read_bytes()


class TestTracing:
    def test_disabled_by_default_returns_null_span(self):
        ctx = TRACER.span("anything", rank=1)
        with ctx as inner:
            inner.set(ignored=True)  # no-op, must not raise
        assert TRACER.roots == []
        assert TRACER.span_count() == 0

    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("outer", run=1):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b") as b:
                b.set(items=3)
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.name == "outer" and outer.attrs == {"run": 1}
        assert [child.name for child in outer.children] == ["inner.a",
                                                            "inner.b"]
        assert outer.children[1].attrs == {"items": 3}
        assert outer.duration_us >= outer.children[0].duration_us
        assert tracer.span_count() == 3

    def test_exception_recorded_and_reraised(self):
        tracer = Tracer()
        tracer.enabled = True
        with pytest.raises(KeyError):
            with tracer.span("boom"):
                raise KeyError("x")
        assert tracer.roots[0].attrs["error"] == "KeyError"

    def test_thread_spans_become_separate_roots(self):
        tracer = Tracer()
        tracer.enabled = True

        def work():
            with tracer.span("worker"):
                pass

        with tracer.span("main-span"):
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        names = sorted(s.name for s in tracer.roots)
        assert names == ["main-span", "worker"]

    def test_export_and_ingest_round_trip(self):
        source = Tracer()
        source.enabled = True
        with source.span("chunk", ranks=5):
            with source.span("visit", rank=0):
                pass
        exported = source.export_spans()
        assert json.dumps(exported)  # plain JSON-serializable dicts

        sink = Tracer()
        sink.ingest(exported, pid="chunk-007")
        assert len(sink.roots) == 1
        root = sink.roots[0]
        assert root.pid == "chunk-007"
        assert root.children[0].pid == "chunk-007"
        assert root.children[0].attrs == {"rank": 0}

    def test_to_tree_schema(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("a"):
            pass
        tree = tracer.to_tree()
        assert tree["schema"] == "repro.trace/1"
        node = tree["spans"][0]
        assert set(node) == {"name", "start_us", "duration_us", "thread",
                             "pid", "attrs", "children"}

    def test_chrome_trace_format(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        doc = tracer.to_chrome_trace()
        events = doc["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in metadata} == {"process_name",
                                                "thread_name"}
        assert [e["name"] for e in complete] == ["outer", "inner"]
        for event in complete:
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert event["ts"] >= 0 and event["dur"] >= 0
        json.dumps(doc)

    def test_clear_resets_roots_and_stacks(self):
        tracer = Tracer()
        tracer.enabled = True
        open_span = tracer.span("stale")
        open_span.__enter__()
        tracer.clear()
        with tracer.span("fresh"):
            pass
        # The fresh span must not attach under the stale open span.
        assert [s.name for s in tracer.roots] == ["fresh"]


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        histogram = registry.histogram("h")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 5}
        assert snap["gauges"] == {"g": 2.5}
        assert snap["histograms"]["h"] == {
            "count": 3, "total": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0}

    def test_snapshot_omits_zero_values_and_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("untouched")
        registry.counter("b").inc()
        registry.counter("a").inc()
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "b"]

    def test_merge_folds_worker_snapshot_in(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("c").inc(2)
        parent.histogram("h").observe(10.0)
        worker.counter("c").inc(3)
        worker.histogram("h").observe(1.0)
        worker.gauge("g").set(7)
        parent.merge(worker.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 7
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["min"] == 1.0
        assert snap["histograms"]["h"]["max"] == 10.0

    def test_reset_keeps_cached_handles_valid(self):
        registry = MetricsRegistry()
        handle = registry.counter("kept")
        handle.inc(9)
        registry.reset()
        assert handle.value == 0
        handle.inc()
        assert registry.counter("kept").value == 1
        assert registry.counter("kept") is handle

    def test_enable_disable_sync_the_fast_path_gate(self):
        assert not obs_metrics.COUNTING and not REGISTRY.enabled
        enable_observability()
        assert obs_metrics.COUNTING and REGISTRY.enabled
        assert TRACER.enabled
        disable_observability()
        assert not obs_metrics.COUNTING and not REGISTRY.enabled
        assert not TRACER.enabled

    def test_observed_restores_prior_state(self):
        with observed() as tracer:
            assert tracer.enabled and obs_metrics.COUNTING
        assert not TRACER.enabled and not obs_metrics.COUNTING


class TestInstrumentation:
    def test_crawl_records_spans_and_metrics(self, web):
        with observed():
            CrawlerPool(web, workers=2, backend="thread").run(
                telemetry=CrawlTelemetry())
            names = {s.name for s in TRACER.roots}
            snap = REGISTRY.snapshot()
        assert "crawl.run" in names
        visit_spans = sum(1 for root in TRACER.roots
                          for child in [root, *root.children]
                          if child.name == "crawl.visit")
        assert visit_spans == SITES
        assert snap["counters"]["crawl.visits"] == SITES
        assert snap["histograms"]["crawl.simulated_seconds"]["count"] == SITES

    def test_process_backend_ships_deltas(self, web):
        with observed():
            CrawlerPool(web, workers=2, backend="process").run(
                telemetry=CrawlTelemetry())
            pids = {s.pid for s in TRACER.roots}
            snap = REGISTRY.snapshot()
        assert any(pid.startswith("chunk-") for pid in pids)
        # Worker-side policy-engine work is merged back into the parent.
        assert snap["counters"].get("policy.explain_memo_misses", 0) > 0
        chunk_spans = [s for s in TRACER.roots if s.name == "crawl.chunk"]
        assert sum(s.attrs["ranks"] for s in chunk_spans) == SITES

    def test_summarize_and_index_spans(self, plain_dataset):
        with observed():
            summarize(plain_dataset)
            names = {s.name for s in TRACER.roots}
            for root in TRACER.roots:
                names.update(child.name for child in root.children)
            snap = REGISTRY.snapshot()
        assert "analysis.summarize" in names
        assert "analysis.index" in names
        assert {"analysis.usage", "analysis.delegation", "analysis.headers",
                "analysis.overpermission"} <= names
        hits = [k for k in snap["counters"] if k.startswith("index.memo_")]
        assert hits, "index memo counters missing"

    def test_store_metrics(self, web, plain_dataset, tmp_path):
        with observed():
            with CrawlStore(tmp_path / "m.sqlite") as store:
                store.save_dataset(plain_dataset)
                store.load_dataset()
            snap = REGISTRY.snapshot()
        assert snap["counters"]["store.visits_saved"] == SITES
        assert snap["counters"]["store.visits_loaded"] == SITES


class TestIdentityUnderObservability:
    """The never-changes-results invariant, end to end."""

    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("thread", 4), ("process", 2),
    ])
    def test_dataset_bytes_identical(self, web, plain_dataset, tmp_path,
                                     backend, workers):
        with observed():
            traced = CrawlerPool(web, workers=workers, backend=backend).run()
        assert dataset_bytes(traced, tmp_path, "on") == \
            dataset_bytes(plain_dataset, tmp_path, "off")

    def test_kill_and_resume_identical_with_tracing(self, web, plain_dataset,
                                                    tmp_path):
        chunks = chunk_ranks(list(range(SITES)), 2 * CHUNKS_PER_WORKER)
        survived = [rank for chunk in chunks[:2] for rank in chunk]
        with observed():
            with CrawlStore(tmp_path / "k.sqlite") as store:
                CrawlerPool(web, workers=2, backend="process").run(
                    survived, store=store)
                resumed = CrawlerPool(web, workers=2, backend="process").run(
                    store=store, resume=True)
        assert dataset_bytes(resumed, tmp_path, "resumed") == \
            dataset_bytes(plain_dataset, tmp_path, "reference")

    def test_summaries_field_identical(self, plain_dataset):
        baseline = summarize(plain_dataset)
        with observed():
            traced = summarize(plain_dataset)
            traced_serial = summarize(plain_dataset, parallel=False)
        assert traced == baseline
        assert traced_serial == baseline


class TestProfiler:
    def test_stage_breakdown_and_render(self):
        profile = profile_pipeline(30, seed=7, workers=2, backend="serial")
        names = [stage.name for stage in profile.stages]
        assert names == ["generate", "crawl", "store", "verify", "index",
                         "analysis.usage", "analysis.delegation",
                         "analysis.headers", "analysis.overpermission"]
        assert profile.total_seconds > 0
        assert profile.backend == "serial"
        rendered = profile.render()
        for name in names:
            assert name in rendered
        assert "crawl.visits" in rendered  # counters section
        doc = profile.to_json()
        json.dumps(doc)
        assert doc["site_count"] == 30
        assert doc["metrics"]["counters"]["crawl.visits"] == 30
        # The profiler must restore the default off state…
        assert not TRACER.enabled and not obs_metrics.COUNTING
        # …but leave the spans behind for --trace-out.
        assert TRACER.span_count() > 0

    def test_write_trace_is_chrome_loadable(self, tmp_path):
        profile_pipeline(30, seed=7, workers=1, backend="serial")
        path = write_trace(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        assert any(e.get("ph") == "X" and e["name"] == "profile.pipeline"
                   for e in doc["traceEvents"])

    def test_profile_round_trips_as_dataclass(self):
        profile = PipelineProfile(site_count=1, seed=2, workers=3,
                                  backend="serial", stages=[],
                                  visits_by_worker={}, metrics={})
        assert profile.total_seconds == 0.0


class TestRunnerBugfixes:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        saved = dict(runner._CACHE)
        runner._CACHE.clear()
        yield
        runner._CACHE.clear()
        runner._CACHE.update(saved)

    def test_sqlite_error_during_cache_write_is_swallowed(self, monkeypatch):
        """Regression: a sqlite3.Error in the best-effort cache write used
        to crash the whole measurement run."""
        def boom(self, dataset):
            raise sqlite3.OperationalError("database or disk is full")
        monkeypatch.setattr(runner.CrawlStore, "save_dataset", boom)
        ctx = runner.run_measurement(240, seed=9)  # must not raise
        assert len(ctx.dataset.visits) == 240
        manifest_path, _ = runner._cache_paths(240, 9)
        assert not manifest_path.exists()
        assert not manifest_path.with_suffix(".json.tmp").exists()

    def test_failed_cache_write_removes_manifest_tmp(self, monkeypatch):
        real_write_text = runner.Path.write_text

        def fail_manifest(self, *args, **kwargs):
            if self.suffix == ".tmp":
                raise OSError("disk full")
            return real_write_text(self, *args, **kwargs)
        monkeypatch.setattr(runner.Path, "write_text", fail_manifest)
        runner.run_measurement(240, seed=9)
        manifest_path, _ = runner._cache_paths(240, 9)
        assert not manifest_path.with_suffix(".json.tmp").exists()

    def test_use_cache_false_bypasses_in_process_cache(self, monkeypatch):
        """Regression: ``use_cache=False`` used to return the previously
        in-process-cached context instead of crawling fresh."""
        first = runner.run_measurement(240, seed=9)
        assert runner.run_measurement(240, seed=9) is first
        crawled = []

        class CountingPool(runner.CrawlerPool):
            def run(self, *args, **kwargs):
                crawled.append(True)
                return super().run(*args, **kwargs)
        monkeypatch.setattr(runner, "CrawlerPool", CountingPool)
        fresh = runner.run_measurement(240, seed=9, use_cache=False)
        assert crawled, "use_cache=False must crawl fresh"
        assert fresh is not first
        assert fresh.dataset.visits == first.dataset.visits

    def test_cached_result_ignores_backend(self, monkeypatch):
        """Documented behaviour: a cache hit cannot change backends (all
        backends are byte-identical anyway)."""
        first = runner.run_measurement(240, seed=9)

        def no_crawl(*args, **kwargs):
            raise AssertionError("cache hit must not crawl")
        monkeypatch.setattr(runner.CrawlerPool, "run", no_crawl)
        again = runner.run_measurement(240, seed=9, backend="process")
        assert again is first

    def test_configured_site_count_error_message(self, monkeypatch):
        monkeypatch.setenv("REPRO_SITES", "twenty")
        with pytest.raises(ValueError, match="REPRO_SITES.*'twenty'"):
            runner.configured_site_count()
        monkeypatch.setenv("REPRO_SITES", "5000")
        assert runner.configured_site_count() == 5000

    def test_cache_metrics(self):
        with observed():
            runner.run_measurement(240, seed=9)       # disk miss, crawls
            runner._CACHE.clear()
            runner.run_measurement(240, seed=9)       # disk hit
            runner.run_measurement(240, seed=9)       # in-process hit
            snap = REGISTRY.snapshot()
        counters = snap["counters"]
        assert counters["measurement_cache.disk_misses"] == 1
        assert counters["measurement_cache.disk_hits"] == 1
        assert counters["measurement_cache.memory_hits"] == 1


class TestCli:
    def test_profile_command(self, capsys):
        from repro.cli import main

        assert main(["profile", "--sites", "30", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "pipeline profile" in out
        for stage in ("generate", "crawl", "store", "index",
                      "analysis.usage"):
            assert stage in out

    def test_profile_json_and_trace_out(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace.json"
        assert main(["profile", "--sites", "30", "--workers", "1",
                     "--json", "--trace-out", str(trace)]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out[:out.index("wrote Chrome trace")])
        assert doc["site_count"] == 30
        assert json.loads(trace.read_text())["traceEvents"]

    def test_crawl_trace_out(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "crawl-trace.json"
        db = tmp_path / "c.sqlite"
        assert main(["crawl", "--sites", "25", "--workers", "2",
                     "--database", str(db),
                     "--trace-out", str(trace)]) == 0
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(e.get("name") == "crawl.run" for e in events)
        assert not TRACER.enabled  # restored after the command

    def test_log_level_flag_parses(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["--log-level", "warning", "telemetry",
                     "--sites", "20", "--workers", "1"]) == 0
        assert "visits" in capsys.readouterr().out
