"""Tests for policy inheritance and is_feature_enabled.

Covers every row of the paper's Table 1, the nested-delegation rule of
Section 2.2.5, non-policy-controlled features, the legacy Feature-Policy
fallback, and the local-scheme specification issue of Table 11.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.policy.engine import PermissionsPolicyEngine, PolicyFrame
from repro.policy.origin import Origin

ENGINE = PermissionsPolicyEngine()
FIXED = PermissionsPolicyEngine(local_scheme_bug=False)


def _scenario(header, allow):
    top = PolicyFrame.top("https://example.org", header=header)
    child = top.child("https://iframe.com", allow=allow)
    return top, child


class TestTable1:
    """The eight camera cases, verbatim from the paper."""

    @pytest.mark.parametrize("case,header,allow,top_expected,child_expected", [
        (1, None, None, True, False),
        (2, None, "camera", True, True),
        (3, "camera=()", "camera", False, False),
        (4, "camera=(self)", "camera", True, False),
        (5, "camera=(*)", None, True, False),
        (6, "camera=(*)", "camera", True, True),
        (7, 'camera=(self "https://iframe.com")', "camera", True, True),
        (8, 'camera=("https://iframe.com")', "camera", False, False),
    ])
    def test_case(self, case, header, allow, top_expected, child_expected):
        top, child = _scenario(header, allow)
        assert ENGINE.is_enabled("camera", top) is top_expected, f"case {case} top"
        assert ENGINE.is_enabled("camera", child) is child_expected, f"case {case} child"

    def test_case_8_blocks_because_self_missing(self):
        """Case 8 shows the spec limitation: delegation without self is
        impossible (W3C issue #480)."""
        _, child = _scenario('camera=("https://iframe.com")', "camera")
        decision = ENGINE.explain("camera", child)
        assert not decision.enabled
        assert "parent lacks feature" in decision.reason


class TestDefaults:
    def test_star_default_feature_reaches_cross_origin_iframes(self):
        """picture-in-picture (default *) works in iframes without allow."""
        _, child = _scenario(None, None)
        assert ENGINE.is_enabled("picture-in-picture", child)

    def test_self_default_feature_blocked_cross_origin(self):
        _, child = _scenario(None, None)
        assert not ENGINE.is_enabled("geolocation", child)

    def test_same_origin_iframe_gets_self_default(self):
        top = PolicyFrame.top("https://example.org")
        child = top.child("https://example.org/frame")
        assert ENGINE.is_enabled("camera", child)

    def test_unknown_feature_is_allowed(self):
        top = PolicyFrame.top("https://example.org")
        assert ENGINE.is_enabled("made-up-feature", top)


class TestNestedDelegation:
    def test_delegated_iframe_can_redelegate(self):
        """Section 2.2.5: once delegated, the top-level site cannot prevent
        nested delegation — even with a restrictive header."""
        top = PolicyFrame.top(
            "https://example.org",
            header='camera=(self "https://iframe.com")')
        child = top.child("https://iframe.com", allow="camera")
        grandchild = child.child("https://nested.example", allow="camera")
        assert ENGINE.is_enabled("camera", grandchild)

    def test_without_redelegation_nested_frame_blocked(self):
        top = PolicyFrame.top("https://example.org")
        child = top.child("https://iframe.com", allow="camera")
        grandchild = child.child("https://nested.example")
        assert not ENGINE.is_enabled("camera", grandchild)

    def test_child_header_can_restrict_itself(self):
        top = PolicyFrame.top("https://example.org")
        child = top.child("https://iframe.com", allow="camera",
                          header="camera=()")
        assert not ENGINE.is_enabled("camera", child)

    def test_can_delegate_requires_enabled(self):
        top = PolicyFrame.top("https://example.org", header="camera=()")
        assert not ENGINE.can_delegate("camera", top)
        top_ok = PolicyFrame.top("https://example.org")
        assert ENGINE.can_delegate("camera", top_ok)

    def test_cannot_delegate_non_policy_controlled(self):
        top = PolicyFrame.top("https://example.org")
        assert not ENGINE.can_delegate("notifications", top)


class TestNonPolicyControlled:
    def test_notifications_top_level_allowed(self):
        top = PolicyFrame.top("https://example.org")
        assert ENGINE.is_enabled("notifications", top)

    def test_notifications_cross_origin_iframe_blocked(self):
        """Paper 4.1.1: notifications cannot be delegated; only top-level
        contexts can request them."""
        top = PolicyFrame.top("https://example.org")
        child = top.child("https://iframe.com", allow="notifications")
        assert not ENGINE.is_enabled("notifications", child)

    def test_notifications_same_origin_iframe_allowed(self):
        top = PolicyFrame.top("https://example.org")
        child = top.child("https://example.org/inner")
        assert ENGINE.is_enabled("notifications", child)


class TestFeaturePolicyFallback:
    def test_feature_policy_header_enforced_without_pp_header(self):
        top = PolicyFrame.top("https://example.org",
                              fp_header="camera 'none'")
        assert not ENGINE.is_enabled("camera", top)

    def test_pp_header_wins_over_fp_header(self):
        """Chromium rule: Feature-Policy applies only when there is no
        Permissions-Policy header."""
        top = PolicyFrame.top("https://example.org",
                              header="camera=(self)",
                              fp_header="camera 'none'")
        assert ENGINE.is_enabled("camera", top)

    def test_invalid_pp_header_dropped_leaves_defaults(self):
        """A syntax error removes the whole header: the site falls back to
        default allowlists (paper 4.3.3)."""
        top = PolicyFrame.top("https://example.org", header="camera=(),")
        assert top.header is None
        assert ENGINE.is_enabled("camera", top)


class TestLocalSchemeSpecIssue:
    """Table 11: the local-scheme document attack."""

    def _attack_frames(self, scheme="data"):
        victim = PolicyFrame.top("https://example.org",
                                 header="camera=(self)")
        local = victim.local_child(scheme=scheme)
        attacker = local.child("https://attacker.com", allow="camera")
        return victim, local, attacker

    def test_local_document_gets_camera_in_both_modes(self):
        """Expected AND actual behaviour agree: the local-scheme document
        itself may use the camera (Table 11, column 2)."""
        for engine in (ENGINE, FIXED):
            _, local, _ = self._attack_frames()
            assert engine.is_enabled("camera", local)

    def test_actual_spec_leaks_camera_to_attacker(self):
        """Actual specification (bug): delegation from the local-scheme
        document reaches the third party despite camera=(self)."""
        _, _, attacker = self._attack_frames()
        assert ENGINE.is_enabled("camera", attacker)

    def test_expected_behaviour_blocks_attacker(self):
        _, _, attacker = self._attack_frames()
        assert not FIXED.is_enabled("camera", attacker)

    @pytest.mark.parametrize("scheme", ["data", "about", "blob"])
    def test_attack_works_from_every_local_scheme(self, scheme):
        _, _, attacker = self._attack_frames(scheme=scheme)
        assert ENGINE.is_enabled("camera", attacker)

    def test_direct_delegation_still_blocked_in_bug_mode(self):
        """Sanity: without the local-scheme hop the header holds."""
        victim = PolicyFrame.top("https://example.org",
                                 header="camera=(self)")
        attacker = victim.child("https://attacker.com", allow="camera")
        assert not ENGINE.is_enabled("camera", attacker)

    def test_local_child_rejects_network_scheme(self):
        top = PolicyFrame.top("https://example.org")
        with pytest.raises(ValueError):
            top.local_child(scheme="https")

    def test_effective_policy_origin_walks_up(self):
        victim, local, _ = self._attack_frames()
        assert local.effective_policy_origin().same_origin(
            Origin.parse("https://example.org"))

    def test_root_property(self):
        victim, _, attacker = self._attack_frames()
        assert attacker.root is victim


class TestAllowedFeatures:
    def test_allowed_features_lists_star_defaults_in_iframe(self):
        top = PolicyFrame.top("https://example.org")
        child = top.child("https://iframe.com")
        allowed = ENGINE.allowed_features(child)
        assert "picture-in-picture" in allowed
        assert "camera" not in allowed

    def test_allowed_features_honours_header(self):
        top = PolicyFrame.top("https://example.org",
                              header="picture-in-picture=()")
        assert "picture-in-picture" not in ENGINE.allowed_features(top)

    @given(st.sampled_from(["camera", "geolocation", "microphone", "usb",
                            "payment", "fullscreen", "gamepad"]))
    def test_disable_header_always_blocks(self, feature):
        """Property: feature=() disables the feature in the top-level and
        every descendant, with or without delegation."""
        top = PolicyFrame.top("https://example.org", header=f"{feature}=()")
        child = top.child("https://iframe.com", allow=feature)
        grandchild = child.child("https://deep.example", allow=feature)
        assert not ENGINE.is_enabled(feature, top)
        assert not ENGINE.is_enabled(feature, child)
        assert not ENGINE.is_enabled(feature, grandchild)

    @given(st.sampled_from(["camera", "geolocation", "microphone", "usb"]))
    def test_no_header_no_allow_never_grants_cross_origin(self, feature):
        """Property: self-default features never leak to a cross-origin
        iframe without explicit delegation."""
        top = PolicyFrame.top("https://example.org")
        child = top.child("https://iframe.com")
        assert not ENGINE.is_enabled(feature, child)


class TestSandboxedIframes:
    """The sandbox attribute: opaque origins cut off self-keyed grants."""

    def _child(self, sandbox, allow="camera"):
        top = PolicyFrame.top("https://example.org")
        return ENGINE, top.child("https://widget.example/w", allow=allow,
                                 sandbox=sandbox)

    def test_sandbox_without_same_origin_blocks_delegation(self):
        engine, child = self._child("allow-scripts")
        assert child.sandboxed
        assert not engine.is_enabled("camera", child)

    def test_allow_same_origin_token_restores_delegation(self):
        engine, child = self._child("allow-scripts allow-same-origin")
        assert not child.sandboxed
        assert engine.is_enabled("camera", child)

    def test_empty_sandbox_attribute_isolates(self):
        engine, child = self._child("")
        assert child.sandboxed
        assert not engine.is_enabled("camera", child)

    def test_star_delegation_reaches_sandboxed_document(self):
        engine, child = self._child("allow-scripts", allow="camera *")
        assert engine.is_enabled("camera", child)

    def test_star_default_features_survive_sandbox(self):
        engine, child = self._child("allow-scripts", allow=None)
        assert engine.is_enabled("gamepad", child)

    def test_no_sandbox_attribute_is_not_sandboxed(self):
        engine, child = self._child(None)
        assert not child.sandboxed

    def test_sandboxed_same_origin_iframe_loses_self_defaults(self):
        """Even a same-origin iframe becomes cross-origin when sandboxed."""
        top = PolicyFrame.top("https://example.org")
        child = top.child("https://example.org/inner",
                          sandbox="allow-scripts")
        assert not ENGINE.is_enabled("camera", child)


class TestEngineMonotonicityProperties:
    """Spec invariants, property-tested: the header can only restrict, and
    a plain delegation can only add."""

    HEADER_VALUES = ["()", "(self)", "*",
                     '(self "https://iframe.com")',
                     '("https://iframe.com")']
    FEATURES = ["camera", "geolocation", "usb", "gamepad",
                "picture-in-picture", "storage-access"]

    @given(st.sampled_from(FEATURES), st.sampled_from(HEADER_VALUES),
           st.sampled_from([None, "camera", "geolocation", "usb", "gamepad",
                            "picture-in-picture", "storage-access"]))
    def test_header_never_broadens(self, feature, value, allow):
        """For every frame in the tree: enabled-with-header implies
        enabled-without-header."""
        with_header = PolicyFrame.top("https://example.org",
                                      header=f"{feature}={value}")
        without_header = PolicyFrame.top("https://example.org")
        child_with = with_header.child("https://iframe.com", allow=allow)
        child_without = without_header.child("https://iframe.com",
                                             allow=allow)
        if ENGINE.is_enabled(feature, with_header):
            assert ENGINE.is_enabled(feature, without_header)
        if ENGINE.is_enabled(feature, child_with):
            assert ENGINE.is_enabled(feature, child_without)

    @given(st.sampled_from(FEATURES), st.sampled_from(HEADER_VALUES))
    def test_plain_delegation_never_restricts(self, feature, value):
        """allow="feature" (default src) can only add access for the
        iframe, never remove it."""
        top = PolicyFrame.top("https://example.org",
                              header=f"{feature}={value}")
        plain = top.child("https://iframe.com")
        delegated = top.child("https://iframe.com", allow=feature)
        if ENGINE.is_enabled(feature, plain):
            assert ENGINE.is_enabled(feature, delegated)

    @given(st.sampled_from(FEATURES))
    def test_none_opt_out_always_restricts(self, feature):
        """allow="feature 'none'" must never grant more than no attribute."""
        top = PolicyFrame.top("https://example.org")
        opted_out = top.child("https://iframe.com", allow=f"{feature} 'none'")
        assert not ENGINE.is_enabled(feature, opted_out)

    @given(st.sampled_from(FEATURES), st.sampled_from(HEADER_VALUES),
           st.booleans())
    def test_explain_consistent_with_is_enabled(self, feature, value, deep):
        top = PolicyFrame.top("https://example.org",
                              header=f"{feature}={value}")
        frame = top.child("https://iframe.com", allow=feature)
        if deep:
            frame = frame.child("https://nested.example", allow=feature)
        decision = ENGINE.explain(feature, frame)
        assert decision.enabled == ENGINE.is_enabled(feature, frame)
        assert decision.reason
