"""Tests for paper-scale crawl machinery.

Sharded runs (byte-identical to unsharded, across backends, under
kill-and-resume), batched writes and streaming reads on the store, the
bounded-memory analysis path, and the policy engine's structural decision
memo (differentially against a memo-free engine).
"""

import random

import pytest

from repro.analysis.summary import summarize, summarize_streaming
from repro.crawler.pool import CrawlerPool, shard_store_path
from repro.crawler.storage import CrawlStore, export_jsonl, merge_stores
from repro.obs import metrics as _metrics
from repro.policy.engine import PermissionsPolicyEngine, PolicyFrame
from repro.synthweb.generator import SyntheticWeb

SITES = 180


@pytest.fixture(scope="module")
def web() -> SyntheticWeb:
    return SyntheticWeb(SITES, seed=2024)


@pytest.fixture(scope="module")
def dataset(web):
    return CrawlerPool(web, workers=1).run()


def _export_bytes(store: CrawlStore, tmp_path) -> bytes:
    out = tmp_path / "export.jsonl"
    export_jsonl(store.iter_visits(), out)
    return out.read_bytes()


class TestShardedRuns:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_sharded_equals_unsharded(self, web, dataset, tmp_path, backend):
        pool = CrawlerPool(web, workers=2, backend=backend)
        with CrawlStore(tmp_path / "sharded.sqlite") as store:
            returned = pool.run(store=store, shards=3)
            loaded = store.load_dataset()
        assert returned.visits == dataset.visits
        assert loaded.visits == dataset.visits

    def test_sharded_store_bytes_equal_unsharded_store(self, web, tmp_path):
        pool = CrawlerPool(web, workers=2)
        with CrawlStore(tmp_path / "flat.sqlite") as store:
            pool.run(store=store)
            flat = _export_bytes(store, tmp_path)
        with CrawlStore(tmp_path / "sharded.sqlite") as store:
            pool.run(store=store, shards=4)
            sharded = _export_bytes(store, tmp_path)
        assert sharded == flat

    def test_no_shard_files_left_behind(self, web, tmp_path):
        store_path = tmp_path / "crawl.sqlite"
        with CrawlStore(store_path) as store:
            CrawlerPool(web, workers=1).run(range(40), store=store, shards=3)
        assert not list(tmp_path.glob("crawl.sqlite.shard-*"))

    def test_resume_merges_leftover_shard_files(self, web, dataset, tmp_path):
        """A killed sharded run leaves completed shard stores behind; the
        next resume=True run folds them in before crawling the rest."""
        store_path = tmp_path / "crawl.sqlite"
        ranks = list(range(SITES))
        with CrawlStore(shard_store_path(store_path, 0)) as shard:
            CrawlerPool(web, workers=1).run(ranks[:60], store=shard)
        with CrawlStore(store_path) as store:
            merged = CrawlerPool(web, workers=1).run(
                store=store, shards=3, resume=True)
            assert store.verify().ok
        assert merged.visits == dataset.visits
        assert not list(tmp_path.glob("crawl.sqlite.shard-*"))

    def test_fresh_sharded_run_discards_stale_shard_files(self, web,
                                                          tmp_path):
        store_path = tmp_path / "crawl.sqlite"
        with CrawlStore(shard_store_path(store_path, 0)) as shard:
            CrawlerPool(web, workers=1).run(range(10), store=shard)
        with CrawlStore(store_path) as store:
            fresh = CrawlerPool(web, workers=1).run(
                range(30, 60), store=store, shards=2)
        assert sorted(v.rank for v in fresh.visits) == list(range(30, 60))
        assert not list(tmp_path.glob("crawl.sqlite.shard-*"))

    def test_interrupted_sharded_run_resumes_byte_identical(
            self, web, dataset, tmp_path):
        store_path = tmp_path / "crawl.sqlite"
        pool = CrawlerPool(web, workers=1)

        def stop_after_first_shard(done: int, total: int) -> None:
            if done >= 60:
                pool.request_stop()

        with CrawlStore(store_path) as store:
            pool.run(store=store, shards=3,
                     progress=stop_after_first_shard)
            interrupted = len(store.stored_ranks())
            assert 0 < interrupted < SITES
            resumed = pool.run(store=store, shards=3, resume=True)
            assert store.verify().ok
        assert resumed.visits == dataset.visits

    def test_collect_false_streams_to_store_only(self, web, dataset,
                                                 tmp_path):
        with CrawlStore(tmp_path / "crawl.sqlite") as store:
            returned = CrawlerPool(web, workers=2).run(
                store=store, shards=2, collect=False)
            assert returned.visits == []
            assert store.load_dataset().visits == dataset.visits

    def test_shards_require_store(self, web):
        with pytest.raises(ValueError):
            CrawlerPool(web, workers=1).run(shards=2)

    def test_collect_false_requires_store(self, web):
        with pytest.raises(ValueError):
            CrawlerPool(web, workers=1).run(collect=False)


class TestMerge:
    def test_merge_stores_equals_single_store(self, web, dataset, tmp_path):
        shard_paths = []
        for index, chunk in enumerate((range(0, 70), range(70, SITES))):
            path = tmp_path / f"shard-{index}.sqlite"
            with CrawlStore(path) as shard:
                CrawlerPool(web, workers=1).run(chunk, store=shard)
            shard_paths.append(path)
        target = tmp_path / "merged.sqlite"
        total = merge_stores(target, shard_paths)
        assert total == SITES
        with CrawlStore(target) as store:
            assert store.verify().ok
            assert store.load_dataset().visits == dataset.visits

    def test_merged_store_bytes_equal_direct_save(self, dataset, tmp_path):
        with CrawlStore(tmp_path / "direct.sqlite") as store:
            store.save_visits(dataset.visits)
            direct = _export_bytes(store, tmp_path)
        half = len(dataset.visits) // 2
        with CrawlStore(tmp_path / "a.sqlite") as a:
            a.save_visits(dataset.visits[:half])
        with CrawlStore(tmp_path / "b.sqlite") as b:
            b.save_visits(dataset.visits[half:])
        target = tmp_path / "merged.sqlite"
        merge_stores(target, [tmp_path / "a.sqlite", tmp_path / "b.sqlite"])
        with CrawlStore(target) as store:
            assert _export_bytes(store, tmp_path) == direct

    def test_merge_supersedes_existing_ranks(self, dataset, tmp_path):
        visit = dataset.visits[0]
        stale = type(visit)(**{**visit.__dict__, "retries": visit.retries + 7})
        with CrawlStore(tmp_path / "target.sqlite") as target:
            target.save_visit(stale)
            with CrawlStore(tmp_path / "src.sqlite") as src:
                src.save_visit(visit)
                target.merge_from(src)
            merged = target.load_dataset().visits
        assert len(merged) == 1
        assert merged[0] == visit

    def test_merge_into_itself_raises(self, tmp_path):
        with CrawlStore(tmp_path / "x.sqlite") as store:
            with pytest.raises(ValueError):
                store.merge_from(store)

    def test_streaming_fallback_matches_attach(self, dataset, tmp_path):
        with CrawlStore(tmp_path / "src.sqlite") as src:
            src.save_visits(dataset.visits[:40])
            with CrawlStore(tmp_path / "fast.sqlite") as fast:
                fast.merge_from(src)
                fast_bytes = _export_bytes(fast, tmp_path)
            with CrawlStore(tmp_path / "slow.sqlite") as slow:
                slow.save_visits(src.iter_visits())
                slow_bytes = _export_bytes(slow, tmp_path)
        assert fast_bytes == slow_bytes


class TestStreamingStore:
    def test_iter_visits_equals_load_dataset(self, dataset, tmp_path):
        with CrawlStore(tmp_path / "x.sqlite") as store:
            store.save_visits(dataset.visits)
            loaded = store.load_dataset().visits
            for batch_size in (1, 7, 500):
                streamed = list(store.iter_visits(batch_size=batch_size))
                assert streamed == loaded

    def test_iter_visits_empty_store(self, tmp_path):
        with CrawlStore(tmp_path / "x.sqlite") as store:
            assert list(store.iter_visits()) == []

    def test_iter_visits_rejects_bad_batch_size(self, tmp_path):
        with CrawlStore(tmp_path / "x.sqlite") as store:
            with pytest.raises(ValueError):
                list(store.iter_visits(batch_size=0))

    def test_save_visits_matches_save_visit_loop(self, dataset, tmp_path):
        with CrawlStore(tmp_path / "loop.sqlite") as store:
            for visit in dataset.visits:
                store.save_visit(visit)
            loop_bytes = _export_bytes(store, tmp_path)
        with CrawlStore(tmp_path / "batch.sqlite") as store:
            written = store.save_visits(iter(dataset.visits), chunk_size=37)
            batch_bytes = _export_bytes(store, tmp_path)
        assert written == len(dataset.visits)
        assert batch_bytes == loop_bytes

    def test_save_visits_rejects_bad_chunk_size(self, dataset, tmp_path):
        with CrawlStore(tmp_path / "x.sqlite") as store:
            with pytest.raises(ValueError):
                store.save_visits(dataset.visits, chunk_size=0)


class TestStreamingSummary:
    def test_streaming_equals_materialized(self, dataset):
        assert summarize_streaming(iter(dataset.visits)) == summarize(dataset)

    def test_streaming_from_store(self, dataset, tmp_path):
        with CrawlStore(tmp_path / "x.sqlite") as store:
            store.save_visits(dataset.visits)
            streamed = summarize_streaming(store.iter_visits())
        assert streamed == summarize(dataset)

    def test_streaming_accepts_store_directly(self, dataset, tmp_path):
        with CrawlStore(tmp_path / "x.sqlite") as store:
            store.save_visits(dataset.visits)
            assert summarize_streaming(store) == summarize(dataset)

    def test_streaming_empty(self):
        summary = summarize_streaming(iter(()))
        assert summary.attempted_sites == 0


class TestParallelSummary:
    """Process-parallel summarize: field-identical to the serial pass,
    store-only, with a serial fallback for stores too small to fan out."""

    def test_parallel_equals_serial(self, dataset, tmp_path):
        from repro.crawler.backends import shutdown_warm_pool

        with CrawlStore(tmp_path / "x.sqlite") as store:
            store.save_visits(dataset.visits)
            serial = summarize_streaming(store)
            parallel = summarize_streaming(store, workers=3)
        shutdown_warm_pool()
        assert parallel == serial
        assert parallel == summarize(dataset)

    def test_parallel_requires_store(self, dataset):
        with pytest.raises(ValueError, match="CrawlStore"):
            summarize_streaming(iter(dataset.visits), workers=2)

    def test_small_store_falls_back_to_serial(self, dataset, tmp_path):
        with CrawlStore(tmp_path / "tiny.sqlite") as store:
            store.save_visits(dataset.visits[:3])
            # 3 ranks cannot fill two spans per worker: serial fallback,
            # identical result, no worker pool spun up.
            summary = summarize_streaming(store, workers=8)
        expected = summarize_streaming(iter(dataset.visits[:3]))
        assert summary == expected

    def test_parallel_with_observability_on(self, dataset, tmp_path):
        from repro.crawler.backends import shutdown_warm_pool
        from repro.obs import TRACER, observed

        with CrawlStore(tmp_path / "x.sqlite") as store:
            store.save_visits(dataset.visits)
            plain = summarize_streaming(store)
            with observed():
                traced = summarize_streaming(store, workers=3)
                spans = TRACER.span_count()
        shutdown_warm_pool()
        assert traced == plain
        assert spans > 0


def _random_tree(rng: random.Random) -> list[PolicyFrame]:
    """A random frame chain family: top document plus nested iframes with
    varied headers, allow attributes and sandboxing."""
    headers = [None, "camera=()", "camera=(self)", "camera=(*)",
               'camera=(self "https://iframe.com"), geolocation=(self)',
               "fullscreen=*, microphone=(self)"]
    allows = [None, "camera", "camera; geolocation",
              "camera 'src'; fullscreen *", "geolocation 'none'"]
    hosts = ["https://example.org", "https://iframe.com",
             "https://widget.example", "https://cdn.example"]
    top = PolicyFrame.top(rng.choice(hosts), header=rng.choice(headers))
    frames = [top]
    current = top
    for _ in range(rng.randrange(1, 4)):
        current = current.child(
            rng.choice(hosts), allow=rng.choice(allows),
            header=rng.choice(headers),
            sandbox=rng.choice([None, None, "", "allow-same-origin"]))
        frames.append(current)
    return frames


class TestStructuralMemo:
    FEATURES = ("camera", "geolocation", "fullscreen", "microphone",
                "picture-in-picture")

    def test_differential_against_fresh_engine(self):
        """The memoized engine must answer exactly like a memo-free one on
        hundreds of random trees — same enabled flag, same reason, same
        serialized frame origin, same allowed_features."""
        rng = random.Random(7)
        shared = PermissionsPolicyEngine()
        for _ in range(300):
            frames = _random_tree(rng)
            fresh = PermissionsPolicyEngine()
            for frame in frames:
                for feature in self.FEATURES:
                    got = shared.explain(feature, frame)
                    want = fresh.explain(feature, frame)
                    assert (got.enabled, got.reason, got.frame_origin) == (
                        want.enabled, want.reason, want.frame_origin)
                assert (shared.allowed_features(frame)
                        == fresh.allowed_features(frame))

    def test_memo_hits_across_equivalent_frames(self):
        engine = PermissionsPolicyEngine()
        a = PolicyFrame.top("https://one.example",
                            header="camera=(self)").child(
            "https://iframe.com", allow="camera")
        b = PolicyFrame.top("https://two.example",
                            header="camera=(self)").child(
            "https://iframe.com", allow="camera")
        _metrics.enable_metrics()
        try:
            _metrics.REGISTRY.reset()
            first = engine.explain("camera", a)
            second = engine.explain("camera", b)
            counters = _metrics.REGISTRY.snapshot()["counters"]
        finally:
            _metrics.disable_metrics()
        # Same chain structure and same-origin relations: one miss, then
        # a hit — but each decision reports its own frame's origin.
        assert counters.get("policy.explain_memo_hits", 0) >= 1
        assert first.enabled == second.enabled
        assert first.reason == second.reason

    def test_crawl_memo_hit_rate(self, web):
        """The pool shares one engine, so a crawl's explain decisions must
        mostly be memo hits (the bench gates > 50 %; assert that here at
        test scale too)."""
        _metrics.enable_metrics()
        try:
            _metrics.REGISTRY.reset()
            CrawlerPool(web, workers=1).run(range(120))
            counters = _metrics.REGISTRY.snapshot()["counters"]
        finally:
            _metrics.disable_metrics()
        hits = counters.get("policy.explain_memo_hits", 0)
        misses = counters.get("policy.explain_memo_misses", 0)
        assert hits + misses > 0
        assert hits / (hits + misses) > 0.5
