"""End-to-end scenarios exercising the public API like a downstream user.

Each scenario builds a bespoke synthetic web (custom widget profiles or
generator rates), runs the full crawl + analysis pipeline, and checks the
cross-module behaviour — the integration seams unit tests cannot cover.
"""

import pytest

from repro import CrawlerPool, SyntheticFetcher, SyntheticWeb, summarize
from repro.analysis.overpermission import OverPermissionAnalysis
from repro.analysis.violations import ViolationAnalysis
from repro.synthweb.distributions import GeneratorRates
from repro.synthweb.generator import FailureMode
from repro.synthweb.profiles import WidgetProfile, default_widget_profiles


class TestCustomWidgetThroughPipeline:
    """A brand-new widget profile must flow through crawl → analysis and
    surface in the over-permission table with exactly its unused set."""

    @pytest.fixture(scope="class")
    def dataset(self):
        custom = WidgetProfile(
            name="EvilHelp", site="evilhelp.example", embed_path="/chat",
            embed_count=40_000, delegation_count=39_000,
            allow_template="camera; microphone; geolocation; clipboard-write",
            category="customer-support",
            used_static=("clipboard-write",),
        )
        web = SyntheticWeb(1200, seed=99,
                           profiles=default_widget_profiles() + (custom,))
        return CrawlerPool(web, workers=2).run()

    def test_widget_is_flagged_with_exact_unused_set(self, dataset):
        analysis = OverPermissionAnalysis(dataset.successful())
        rows = {row.site: row for row in analysis.unused_delegations()}
        assert "evilhelp.example" in rows
        assert set(rows["evilhelp.example"].unused_permissions) == {
            "camera", "microphone", "geolocation"}

    def test_case_study_works_for_custom_widget(self, dataset):
        analysis = OverPermissionAnalysis(dataset.successful())
        study = analysis.case_study("evilhelp.example")
        assert study["delegation_rate"] > 0.9
        assert "clipboard-write" in study["observed_activity"]


class TestFailureFreeWeb:
    """Zeroed failure rates must yield a 100 % successful crawl."""

    def test_all_visits_succeed(self):
        rates = GeneratorRates(fail_ephemeral=0.0, fail_timeout=0.0,
                               fail_unreachable=0.0, fail_minor=0.0,
                               fail_late_timeout=0.0, fail_excluded=0.0)
        web = SyntheticWeb(250, seed=3, rates=rates)
        dataset = CrawlerPool(web, workers=2).run()
        assert dataset.successful_count == 250
        assert dataset.failure_summary() == {}


class TestHeaderHeavyWeb:
    """Cranking header adoption to 100 % exercises the whole header
    pipeline on every site."""

    @pytest.fixture(scope="class")
    def dataset(self):
        rates = GeneratorRates(pp_header_rate=1.0)
        web = SyntheticWeb(400, seed=8, rates=rates)
        return CrawlerPool(web, workers=2).run()

    def test_adoption_saturates(self, dataset):
        summary = summarize(dataset)
        # Syntax-error headers are still *sent*; the only haircut left is
        # the tail's 0.90 rank-adoption multiplier.
        assert summary.pp_header_top_level_share > 0.90

    def test_self_inflicted_breakage_appears(self, dataset):
        """With headers everywhere, disable templates inevitably block some
        sites' own functionality."""
        analysis = ViolationAnalysis(dataset.successful())
        report = analysis.report
        assert report.sites_with_blocked_calls > 0
        assert report.sites_with_self_inflicted > 0
        assert report.self_inflicted_permissions

    def test_missing_delegation_blocks_embedded_calls(self, dataset):
        analysis = ViolationAnalysis(dataset.successful())
        assert analysis.report.sites_with_missing_delegation >= 0


class TestViolationsOnDefaultWeb:
    def test_blocked_calls_classified(self):
        web = SyntheticWeb(800, seed=12)
        dataset = CrawlerPool(web, workers=2).run()
        analysis = ViolationAnalysis(dataset.successful())
        report = analysis.report
        # Widgets invoked without delegation (e.g. autoplay-style calls are
        # unobservable, but storage-access / ads APIs in undelegated frames
        # do get blocked) → some blocked calls exist.
        assert report.sites_with_blocked_calls > 0
        assert sum(report.blocked_permissions.values()) >= \
            report.sites_with_blocked_calls
