"""Tests for the ecosystem-era model (Feature-Policy → Permissions-Policy)."""

import pytest

from repro.synthweb.eras import (
    Era,
    EraComparison,
    measure_era,
    rates_for_era,
    transition_curve,
)


class TestEraProfiles:
    def test_2020_has_no_permissions_policy(self):
        profile = rates_for_era(Era.Y2020)
        assert profile.rates.pp_header_rate == 0.0
        assert profile.rates.fp_header_rate > 0.0
        assert not profile.ads_apis_available

    def test_2022_is_the_transition(self):
        profile = rates_for_era(Era.Y2022)
        base = rates_for_era(Era.Y2024).rates
        assert 0 < profile.rates.pp_header_rate < base.pp_header_rate
        assert profile.rates.fp_header_rate > base.fp_header_rate
        assert profile.floc_optout_wave

    def test_2024_is_the_calibrated_default(self):
        profile = rates_for_era(Era.Y2024)
        assert profile.rates.pp_header_rate == pytest.approx(0.045)
        assert profile.ads_apis_available

    def test_unknown_era_rejected(self):
        with pytest.raises(ValueError):
            rates_for_era("1999")  # type: ignore[arg-type]


class TestTransitionCurve:
    @pytest.fixture(scope="class")
    def curve(self):
        return transition_curve(1200, seed=5, workers=2)

    def test_pp_adoption_monotone_rising(self, curve):
        shares = [point.pp_top_level_share for point in curve]
        assert shares[0] == 0.0
        assert shares[0] < shares[1] < shares[2]

    def test_fp_adoption_rises_then_collapses(self, curve):
        """Feature-Policy peaks mid-transition and decays to the paper's
        0.51 % residual."""
        shares = [point.fp_top_level_share for point in curve]
        assert shares[1] > shares[0] or shares[1] > shares[2]
        assert shares[2] < shares[1]

    def test_delegation_present_throughout(self, curve):
        """The allow attribute predates the header rename; delegation is
        not an era artefact."""
        for point in curve:
            assert point.sites_delegating_share > 0.05

    def test_any_header_share(self):
        point = EraComparison(Era.Y2024, 0.04, 0.005, 0.12)
        assert point.any_header_share == pytest.approx(0.045)
