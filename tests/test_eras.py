"""Tests for the ecosystem-era model (Feature-Policy → Permissions-Policy)."""

import pytest

from repro.synthweb.eras import (
    Era,
    EraComparison,
    era_context,
    era_variant,
    measure_era,
    rates_for_era,
    transition_curve,
)


class TestEraProfiles:
    def test_2020_has_no_permissions_policy(self):
        profile = rates_for_era(Era.Y2020)
        assert profile.rates.pp_header_rate == 0.0
        assert profile.rates.fp_header_rate > 0.0
        assert not profile.ads_apis_available

    def test_2022_is_the_transition(self):
        profile = rates_for_era(Era.Y2022)
        base = rates_for_era(Era.Y2024).rates
        assert 0 < profile.rates.pp_header_rate < base.pp_header_rate
        assert profile.rates.fp_header_rate > base.fp_header_rate
        assert profile.floc_optout_wave

    def test_2024_is_the_calibrated_default(self):
        profile = rates_for_era(Era.Y2024)
        assert profile.rates.pp_header_rate == pytest.approx(0.045)
        assert profile.ads_apis_available

    def test_unknown_era_rejected(self):
        with pytest.raises(ValueError):
            rates_for_era("1999")  # type: ignore[arg-type]


class TestTransitionCurve:
    @pytest.fixture(scope="class")
    def curve(self):
        return transition_curve(1200, seed=5, workers=2)

    def test_pp_adoption_monotone_rising(self, curve):
        shares = [point.pp_top_level_share for point in curve]
        assert shares[0] == 0.0
        assert shares[0] < shares[1] < shares[2]

    def test_fp_adoption_rises_then_collapses(self, curve):
        """Feature-Policy peaks mid-transition and decays to the paper's
        0.51 % residual."""
        shares = [point.fp_top_level_share for point in curve]
        assert shares[1] > shares[0] or shares[1] > shares[2]
        assert shares[2] < shares[1]

    def test_delegation_present_throughout(self, curve):
        """The allow attribute predates the header rename; delegation is
        not an era artefact."""
        for point in curve:
            assert point.sites_delegating_share > 0.05

    def test_any_header_share(self):
        point = EraComparison(Era.Y2024, 0.04, 0.005, 0.12)
        assert point.any_header_share == pytest.approx(0.045)


class TestAnyHeaderUnion:
    """The `any_header_share` fix: a measured union, not pp + fp."""

    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        from repro.experiments import runner
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        saved = dict(runner._CACHE)
        runner._CACHE.clear()
        yield
        runner._CACHE.clear()
        runner._CACHE.update(saved)

    def test_union_bounded_by_sum_and_max(self):
        point = measure_era(Era.Y2024, 500, seed=6, workers=2)
        assert point.any_header_top_level_share is not None
        assert point.any_header_share <= (
            point.pp_top_level_share + point.fp_top_level_share)
        assert point.any_header_share >= max(
            point.pp_top_level_share, point.fp_top_level_share)

    def test_union_matches_manual_count(self):
        ctx = era_context(Era.Y2024, 500, seed=6, workers=2)
        point = measure_era(Era.Y2024, 500, seed=6, workers=2)
        union = sum(
            1 for visit in ctx.dataset.successful()
            if visit.top_frame.header("permissions-policy") is not None
            or visit.top_frame.header("feature-policy") is not None)
        top_docs = max(1, ctx.headers.top_level_documents)
        assert point.any_header_top_level_share == union / top_docs

    def test_fallback_keeps_legacy_sum(self):
        # Hand-built comparisons without the measured field keep the
        # historical approximation — documented as double-counting.
        point = EraComparison(Era.Y2022, 0.02, 0.015, 0.1)
        assert point.any_header_share == pytest.approx(0.035)


class TestMeasureEraRewire:
    """measure_era/transition_curve now route through run_measurement:
    same bytes as the historical direct-crawl path, plus caching."""

    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        from repro.experiments import runner
        self.cache_dir = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(self.cache_dir))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        saved = dict(runner._CACHE)
        runner._CACHE.clear()
        yield
        runner._CACHE.clear()
        runner._CACHE.update(saved)

    def test_byte_identical_to_direct_crawl(self):
        # The pre-rewire implementation, replicated verbatim.
        from repro.analysis.delegation import DelegationAnalysis
        from repro.analysis.headers import HeaderAnalysis
        from repro.crawler.pool import CrawlerPool
        from repro.synthweb.generator import SyntheticWeb

        profile = rates_for_era(Era.Y2022)
        web = SyntheticWeb(400, seed=3, rates=profile.rates)
        dataset = CrawlerPool(web, workers=2).run()
        visits = dataset.successful()
        headers = HeaderAnalysis(visits)
        delegation = DelegationAnalysis(visits)
        fp_top = sum(1 for visit in visits
                     if visit.top_frame.header("feature-policy") is not None)

        point = measure_era(Era.Y2022, 400, seed=3, workers=2)
        assert point.pp_top_level_share \
            == headers.adoption().pp_top_level_share
        assert point.fp_top_level_share \
            == fp_top / max(1, headers.top_level_documents)
        assert point.sites_delegating_share \
            == delegation.share_sites_delegating

    def test_disk_cache_round_trip_with_era_variant(self):
        from repro.experiments import runner

        first = measure_era(Era.Y2020, 300, seed=4, workers=2)
        base = self.cache_dir / "measurement-300-4-era2020"
        assert base.with_suffix(".json").exists()
        assert base.with_suffix(".sqlite").exists()
        # A cleared in-process cache forces the disk path; the loaded
        # crawl must measure identically.
        runner._CACHE.clear()
        second = measure_era(Era.Y2020, 300, seed=4, workers=2)
        assert first == second

    def test_era_variants_do_not_collide(self):
        # Same (count, seed) in two eras must hit different cache slots:
        # 2020 has no Permissions-Policy at all, 2024 does.
        old = measure_era(Era.Y2020, 300, seed=4, workers=2)
        new = measure_era(Era.Y2024, 300, seed=4, workers=2)
        assert old.pp_top_level_share == 0.0
        assert new.pp_top_level_share > 0.0
        assert era_variant(Era.Y2020) != era_variant(Era.Y2024)

    def test_transition_curve_reuses_cached_eras(self):
        from repro.experiments import runner

        curve = transition_curve(300, seed=4, workers=2)
        assert len(runner._CACHE) == 3
        again = transition_curve(300, seed=4, workers=2)
        assert curve == again
