"""Tests for the self-healing crawl supervisor (DESIGN.md §4k).

Three layers, matching the module split:

* :class:`~repro.crawler.supervisor.ChunkSupervisor` is pure bookkeeping
  (injectable clock, no processes), so strikes, probation, bisection,
  exoneration, the watchdog deadline math and the rebuild budget are
  unit-tested event-by-event.
* :class:`~repro.crawler.chaos.ChaosPolicy` planning and marker state are
  tested without firing anything (firing ``os._exit`` in-process would
  kill pytest).
* Integration tests run real chaos-injected crawls on the process
  backend and assert the dataset is byte-identical to the crash-free
  baseline — modulo exactly the quarantined poison ranks — which is the
  supervisor's core contract.
"""

import glob
import sqlite3
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.crawler.chaos import ChaosPolicy
from repro.crawler.pool import CrawlerPool
from repro.crawler.storage import CrawlStore
from repro.crawler.supervisor import (
    POISON_VISIT,
    ChunkSupervisor,
    PoolCrashError,
    RecoveryPlan,
    SupervisorConfig,
)
from repro.crawler.telemetry import CrawlTelemetry
from repro.synthweb.generator import SyntheticWeb


@pytest.fixture(scope="module")
def web() -> SyntheticWeb:
    return SyntheticWeb(40, seed=2024)


@pytest.fixture(scope="module")
def baseline(web):
    return CrawlerPool(web, workers=2).run()


def fast_config(**overrides) -> SupervisorConfig:
    """A drill-speed config: short watchdog, small budget headroom."""
    defaults = dict(max_pool_rebuilds=12, watchdog_floor_seconds=2.0,
                    watchdog_poll_seconds=0.05)
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestSupervisorConfig:
    def test_defaults_are_valid(self):
        config = SupervisorConfig()
        assert config.max_pool_rebuilds == 8
        assert config.watchdog_enabled

    @pytest.mark.parametrize("kwargs", [
        {"max_pool_rebuilds": -1},
        {"suspect_strikes": 0},
        {"watchdog_factor": 0.0},
        {"watchdog_floor_seconds": 0.0},
        {"watchdog_poll_seconds": -0.1},
        {"merge_attempts": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorConfig(**kwargs)

    def test_zero_poll_disables_watchdog(self):
        assert not SupervisorConfig(
            watchdog_poll_seconds=0).watchdog_enabled


class TestChunkSupervisor:
    """Event-driven unit tests: no executors, injectable clock."""

    def test_transient_crash_requeues_everything(self):
        sup = ChunkSupervisor(SupervisorConfig())
        plan = sup.on_pool_crash([(0, 1, 2), (3, 4)], cause="worker-crash")
        assert plan.requeue == ((0, 1, 2), (3, 4))
        assert plan.probation == ()
        assert plan.quarantine == ()
        assert sup.rebuilds == 1
        assert sup.requeued_ranks == 5

    def test_strike_threshold_sends_chunk_to_probation(self):
        sup = ChunkSupervisor(SupervisorConfig(suspect_strikes=2))
        first = sup.on_pool_crash([(7, 8)], cause="worker-crash")
        assert first.requeue == ((7, 8),)
        second = sup.on_pool_crash([(7, 8)], cause="worker-crash")
        # Two strikes: suspicion reached, but guilt unproven — the chunk
        # goes to probation (isolated re-run), never straight to
        # quarantine.
        assert second.requeue == ()
        assert second.probation == ((7, 8),)
        assert second.quarantine == ()

    def test_bystanders_of_a_hang_requeue_strike_free(self):
        sup = ChunkSupervisor(SupervisorConfig(suspect_strikes=1))
        # The watchdog attributes exactly: only the hung chunk is
        # suspect, so the co-flying chunk must not be on probation even
        # with suspect_strikes=1.
        plan = sup.on_pool_crash([(0, 1), (2, 3)], cause="hang",
                                 suspects=[(0, 1)])
        assert plan.probation == ((0, 1),)
        assert plan.requeue == ((2, 3),)
        assert sup.watchdog_hangs == 1

    def test_certain_crash_bisects_multirank_chunk(self):
        sup = ChunkSupervisor(SupervisorConfig())
        plan = sup.on_pool_crash([(4, 5, 6, 7)], cause="worker-crash",
                                 suspects=[(4, 5, 6, 7)], certain=True)
        # Proven guilty in isolation: split, probe each half alone.
        assert plan.probation == ((4, 5), (6, 7))
        assert plan.requeue == ()
        assert sup.bisections == 1

    def test_certain_crash_quarantines_single_rank(self):
        sup = ChunkSupervisor(SupervisorConfig())
        plan = sup.on_pool_crash([(9,)], cause="worker-crash",
                                 suspects=[(9,)], certain=True)
        assert plan.quarantine[0][0] == 9
        assert "isolation" in plan.quarantine[0][1]
        assert sup.stats()["quarantined_ranks"] == [9]

    def test_exonerate_clears_strikes(self):
        sup = ChunkSupervisor(SupervisorConfig(suspect_strikes=2))
        sup.on_pool_crash([(7, 8)], cause="worker-crash")
        sup.exonerate((7, 8))
        assert sup.exonerations == 1
        assert {"event": "exonerated", "ranks": [7, 8]} in sup.events
        # The record is clean: the next crash is a first strike again.
        plan = sup.on_pool_crash([(7, 8)], cause="worker-crash")
        assert plan.requeue == ((7, 8),)
        assert plan.probation == ()
        # Exonerating an unknown chunk is a no-op, not an error.
        sup.exonerate((30, 31))
        assert sup.exonerations == 1

    def test_budget_exhaustion_raises_with_story(self):
        sup = ChunkSupervisor(SupervisorConfig(max_pool_rebuilds=1))
        sup.on_pool_crash([(0, 1)], cause="worker-crash")
        with pytest.raises(PoolCrashError) as exc_info:
            sup.on_pool_crash([(2, 3), (0, 1)], cause="worker-crash")
        err = exc_info.value
        assert err.rebuilds == 2
        assert err.max_pool_rebuilds == 1
        assert err.lost_ranks == (0, 1, 2, 3)
        assert err.events[-1]["event"] == "budget-exhausted"
        assert "resume=True" in str(err)

    def test_merge_failure_spends_no_rebuild(self):
        sup = ChunkSupervisor(SupervisorConfig())
        plan = sup.on_merge_failure((10, 11), detail="disk flake")
        assert plan.requeue == ((10, 11),)
        assert sup.rebuilds == 0
        assert sup.events[-1]["event"] == "merge-failure"
        sup.note_merge_retry()
        assert sup.merge_retries == 1

    def test_watchdog_deadline_math(self):
        config = SupervisorConfig(watchdog_factor=10.0,
                                  watchdog_floor_seconds=30.0)
        sup = ChunkSupervisor(config)
        # No observed rate yet: the floor is the whole deadline.
        assert sup.deadline_seconds(512, None) == 30.0
        # 100 ranks at 20 ranks/s is 5 s expected, ×10 = 50 s.
        assert sup.deadline_seconds(100, 20.0) == 50.0
        # Small chunks stay floored.
        assert sup.deadline_seconds(2, 20.0) == 30.0

    def test_watchdog_overdue_uses_submission_times(self):
        clock = FakeClock()
        sup = ChunkSupervisor(fast_config(), clock=clock)
        sup.note_submitted(0)
        clock.now += 1.0
        sup.note_submitted(1)
        assert sup.overdue({0: 8, 1: 8}, None) == []
        clock.now += 1.5  # chunk 0 is now 2.5 s old, past the 2 s floor
        assert sup.overdue({0: 8, 1: 8}, None) == [0]
        sup.note_finished(0)
        assert sup.overdue({0: 8, 1: 8}, None) == []
        # Disabled watchdog never reports anyone.
        off = ChunkSupervisor(fast_config(watchdog_poll_seconds=0),
                              clock=clock)
        off.note_submitted(5)
        clock.now += 1000.0
        assert off.overdue({5: 8}, None) == []

    def test_stats_shape(self):
        sup = ChunkSupervisor(SupervisorConfig())
        stats = sup.stats()
        assert set(stats) == {
            "rebuilds", "max_pool_rebuilds", "requeued_chunks",
            "requeued_ranks", "bisections", "exonerations",
            "watchdog_hangs", "merge_retries", "quarantined_ranks",
            "events"}
        assert stats["rebuilds"] == 0
        assert stats["events"] == []


class TestChaosPolicy:
    def test_plan_is_deterministic_and_staged(self):
        kwargs = dict(seed=97, kills=3, hangs=1, poisons=1,
                      merge_errors=1, state_dir="unused-dir")
        one = ChaosPolicy.plan(1000, **kwargs)
        two = ChaosPolicy.plan(1000, **kwargs)
        assert one == two
        # Crash injections land in the first half of the rank space,
        # hangs in the last quarter: the crash storm (and its
        # pipeline-draining probation probes) resolves before any hang
        # chunk flies, so watchdog_hangs is deterministic.
        crashes = one.kill_ranks + one.poison_ranks + one.merge_error_ranks
        assert all(rank < 500 for rank in crashes)
        assert all(rank >= 750 for rank in one.hang_ranks)
        assert len(set(crashes + one.hang_ranks)) == 6

    def test_plan_rejects_overfull_spans(self):
        with pytest.raises(ValueError, match="cannot place"):
            ChaosPolicy.plan(8, kills=20, state_dir="unused")

    def test_validation(self):
        with pytest.raises(ValueError, match="hang_seconds"):
            ChaosPolicy(hang_seconds=0.0)
        with pytest.raises(ValueError, match="state_dir"):
            ChaosPolicy(kill_ranks=(3,))
        with pytest.raises(ValueError, match=">= 0"):
            ChaosPolicy(poison_ranks=(-1,))
        # Poison is always-on; it needs no marker state.
        assert ChaosPolicy(poison_ranks=(3,)).poison_ranks == (3,)

    def test_markers_fire_once_and_are_durable(self, tmp_path):
        policy = ChaosPolicy(merge_error_ranks=(5,),
                             state_dir=str(tmp_path))
        with pytest.raises(sqlite3.OperationalError):
            policy.before_merge([4, 5, 6])
        # The marker survives: a retry (or a fresh worker process) sees
        # the injection as already fired.
        policy.before_merge([4, 5, 6])
        reloaded = ChaosPolicy(merge_error_ranks=(5,),
                               state_dir=str(tmp_path))
        reloaded.before_merge([4, 5, 6])
        assert policy.fired()["merge"] == (5,)
        assert policy.planned()["merge"] == (5,)


def no_sidecars(directory) -> bool:
    return not glob.glob(str(directory / "*.wchunk-*"))


class TestSupervisedCrawls:
    """End-to-end recovery on the process backend, 2 workers, 40 sites."""

    def test_supervised_run_without_faults_is_identical(self, web,
                                                        baseline):
        pool = CrawlerPool(web, workers=2, backend="process")
        dataset = pool.run(max_pool_rebuilds=4)
        assert dataset.visits == baseline.visits
        stats = pool.last_supervisor_stats
        assert stats["rebuilds"] == 0
        assert stats["quarantined_ranks"] == []
        assert stats["events"] == []

    def test_worker_kill_recovers_byte_identically(self, web, baseline,
                                                   tmp_path):
        chaos = ChaosPolicy(kill_ranks=(5,),
                            state_dir=str(tmp_path / "state"))
        telemetry = CrawlTelemetry()
        with CrawlStore(tmp_path / "kill.sqlite") as store:
            pool = CrawlerPool(web, workers=2, backend="process")
            dataset = pool.run(store=store, chaos=chaos,
                               supervisor=fast_config(),
                               telemetry=telemetry)
            stored = store.stored_ranks()
        assert dataset.visits == baseline.visits
        assert stored == set(range(40))
        stats = pool.last_supervisor_stats
        assert stats["rebuilds"] >= 1
        assert stats["requeued_ranks"] >= 1
        assert stats["quarantined_ranks"] == []
        assert chaos.fired()["kill"] == (5,)
        assert no_sidecars(tmp_path)
        assert not telemetry.snapshot().quarantined_ranks

    def test_poison_rank_is_isolated_and_quarantined(self, web, baseline,
                                                     tmp_path):
        poison = 11
        chaos = ChaosPolicy(poison_ranks=(poison,))
        telemetry = CrawlTelemetry()
        with CrawlStore(tmp_path / "poison.sqlite") as store:
            pool = CrawlerPool(web, workers=2, backend="process")
            dataset = pool.run(store=store, chaos=chaos,
                               supervisor=fast_config(),
                               telemetry=telemetry)
            rows = store.quarantine_rows()
            stored = store.stored_ranks()
        # Exactly the poison rank is missing — probation exonerated every
        # innocent bystander chunk that shared a doomed pool.
        expected = [v for v in baseline.visits if v.rank != poison]
        assert dataset.visits == expected
        assert stored == set(range(40)) - {poison}
        stats = pool.last_supervisor_stats
        assert stats["quarantined_ranks"] == [poison]
        assert [(rank, reason) for rank, reason, _ in rows] == [
            (poison, POISON_VISIT)]
        snap = telemetry.snapshot()
        assert snap.quarantined_ranks == (poison,)
        assert no_sidecars(tmp_path)

    def test_hang_is_caught_by_the_watchdog(self, web, baseline,
                                            tmp_path):
        # Hang-only plan: no co-flying crash can absorb the hung chunk,
        # so the watchdog must be the one to end it.  The sleep is far
        # past the deadline — only a SIGKILL gets the rank back.
        chaos = ChaosPolicy(hang_ranks=(3,), hang_seconds=600.0,
                            state_dir=str(tmp_path / "state"))
        pool = CrawlerPool(web, workers=2, backend="process")
        dataset = pool.run(store=None, chaos=chaos,
                           supervisor=fast_config())
        assert dataset.visits == baseline.visits
        stats = pool.last_supervisor_stats
        assert stats["watchdog_hangs"] == 1
        assert stats["rebuilds"] >= 1
        assert stats["quarantined_ranks"] == []
        assert chaos.fired()["hang"] == (3,)

    def test_merge_error_is_retried(self, web, baseline, tmp_path):
        chaos = ChaosPolicy(merge_error_ranks=(8,),
                            state_dir=str(tmp_path / "state"))
        with CrawlStore(tmp_path / "merge.sqlite") as store:
            pool = CrawlerPool(web, workers=2, backend="process")
            dataset = pool.run(store=store, chaos=chaos,
                               supervisor=fast_config())
            stored = store.stored_ranks()
        assert dataset.visits == baseline.visits
        assert stored == set(range(40))
        stats = pool.last_supervisor_stats
        assert stats["merge_retries"] >= 1
        assert stats["rebuilds"] == 0  # the pool never broke
        assert no_sidecars(tmp_path)

    def test_budget_exhaustion_raises_then_resume_completes(
            self, web, baseline, tmp_path):
        poison = 11
        chaos = ChaosPolicy(poison_ranks=(poison,))
        path = tmp_path / "budget.sqlite"
        with CrawlStore(path) as store:
            pool = CrawlerPool(web, workers=2, backend="process")
            with pytest.raises(PoolCrashError) as exc_info:
                pool.run(store=store, chaos=chaos,
                         supervisor=fast_config(max_pool_rebuilds=1))
        err = exc_info.value
        assert err.max_pool_rebuilds == 1
        assert poison in err.lost_ranks
        # The stats survive the failure for post-mortems.
        assert pool.last_supervisor_stats["rebuilds"] == err.rebuilds
        assert no_sidecars(tmp_path)
        # A resume with a real budget quarantines the poison and
        # completes to the baseline minus that rank.
        with CrawlStore(path) as store:
            pool = CrawlerPool(web, workers=2, backend="process")
            resumed = pool.run(store=store, resume=True, chaos=chaos,
                               supervisor=fast_config())
        expected = [v for v in baseline.visits if v.rank != poison]
        assert resumed.visits == expected
        assert pool.last_supervisor_stats["quarantined_ranks"] == [poison]

    def test_unsupervised_crash_still_raises_but_sweeps(self, web,
                                                        baseline,
                                                        tmp_path):
        # Without a supervisor the crash is fatal, exactly as before the
        # supervisor existed — but the crash path still sweeps sidecar
        # wreckage, so the checkpoint directory stays clean for resume.
        chaos = ChaosPolicy(kill_ranks=(5,),
                            state_dir=str(tmp_path / "state"))
        path = tmp_path / "unsupervised.sqlite"
        with CrawlStore(path) as store:
            pool = CrawlerPool(web, workers=2, backend="process")
            with pytest.raises(BrokenProcessPool):
                pool.run(store=store, chaos=chaos)
        assert pool.last_supervisor_stats is None
        assert no_sidecars(tmp_path)
        # The kill was once-only; a plain unsupervised resume completes.
        with CrawlStore(path) as store:
            resumed = CrawlerPool(web, workers=2, backend="process").run(
                store=store, resume=True)
        assert resumed.visits == baseline.visits

    def test_supervision_requires_the_process_backend(self, web):
        for backend in ("serial", "thread"):
            pool = CrawlerPool(web, workers=2, backend=backend)
            with pytest.raises(ValueError, match="process backend"):
                pool.run(range(4), max_pool_rebuilds=2)
            with pytest.raises(ValueError, match="process backend"):
                pool.run(range(4), chaos=ChaosPolicy(poison_ranks=(1,)))

    def test_negative_budget_is_rejected(self, web):
        pool = CrawlerPool(web, workers=2, backend="process")
        with pytest.raises(ValueError, match="max_pool_rebuilds"):
            pool.run(range(4), max_pool_rebuilds=-1)
