"""Tests for the browser support matrix (paper Figure 3 backing data)."""

import pytest

from repro.registry.browsers import (
    CHROMIUM,
    FIREFOX,
    SAFARI,
    BrowserEngine,
    default_releases,
    releases_for,
)
from repro.registry.features import UnknownPermissionError
from repro.registry.support import (
    SupportMatrix,
    SupportStatus,
    default_support_matrix,
)


@pytest.fixture(scope="module")
def matrix() -> SupportMatrix:
    return default_support_matrix()


class TestBrowsers:
    def test_only_blink_enforces_permissions_policy_header(self):
        """Paper 2.2.6: only Chromium-based browsers support the header."""
        assert CHROMIUM.supports_permissions_policy_header
        assert not FIREFOX.supports_permissions_policy_header
        assert not SAFARI.supports_permissions_policy_header

    def test_all_browsers_support_allow_attribute(self):
        for browser in (CHROMIUM, FIREFOX, SAFARI):
            assert browser.supports_allow_attribute

    def test_blink_keeps_feature_policy_header(self):
        assert CHROMIUM.supports_feature_policy_header
        assert not FIREFOX.supports_feature_policy_header

    def test_release_timeline_includes_chromium_127(self):
        """Chromium 127 is the measurement browser (Appendix A.2 C13)."""
        versions = [r.major_version for r in releases_for(CHROMIUM)]
        assert 127 in versions

    def test_releases_sorted_ascending(self):
        versions = [r.major_version for r in releases_for(FIREFOX)]
        assert versions == sorted(versions)


class TestSupportMatrix:
    def test_camera_supported_everywhere(self, matrix):
        for browser in (CHROMIUM, FIREFOX, SAFARI):
            assert matrix.currently_supported("camera", browser)

    def test_browsing_topics_chromium_only(self, matrix):
        """Paper 4.1.1: Topics proposed by Google, rejected by Mozilla and
        Safari."""
        assert matrix.currently_supported("browsing-topics", CHROMIUM)
        assert not matrix.currently_supported("browsing-topics", FIREFOX)
        assert not matrix.currently_supported("browsing-topics", SAFARI)

    def test_interest_cohort_removed_from_chromium(self, matrix):
        """FLoC shipped and was then pulled: status flips to REMOVED."""
        assert matrix.status("interest-cohort", CHROMIUM, 90) is SupportStatus.SUPPORTED
        assert matrix.status("interest-cohort", CHROMIUM, 120) is SupportStatus.REMOVED

    def test_unknown_permission_raises(self, matrix):
        with pytest.raises(UnknownPermissionError):
            matrix.status("warp-drive", CHROMIUM, 127)

    def test_unlisted_permission_gets_blink_default(self, matrix):
        """Permissions without explicit table rows default to
        Blink-since-88."""
        assert matrix.supported("ch-ua", CHROMIUM, 127)
        assert not matrix.supported("ch-ua", FIREFOX, 128)

    def test_history_is_monotone_in_releases(self, matrix):
        history = matrix.history("storage-access", CHROMIUM)
        versions = [release.major_version for release, _ in history]
        assert versions == sorted(versions)

    def test_changes_compress_history(self, matrix):
        changes = matrix.changes("storage-access", CHROMIUM)
        statuses = [status for _, status in changes]
        # No two consecutive identical statuses.
        assert all(a is not b for a, b in zip(statuses, statuses[1:]))
        # storage-access appears at some point on Chromium.
        assert SupportStatus.SUPPORTED in statuses

    def test_supported_anywhere(self, matrix):
        assert matrix.supported_anywhere("camera")
        assert matrix.supported_anywhere("browsing-topics")  # Chromium only

    def test_chromium_supported_permissions_policy_controlled_only(self, matrix):
        perms = matrix.chromium_supported_permissions()
        names = {p.name for p in perms}
        assert "camera" in names
        assert "notifications" not in names  # not policy-controlled
        assert all(p.policy_controlled for p in perms)

    def test_matrix_rows_cover_registry(self, matrix):
        rows = list(matrix.matrix())
        assert len(rows) == len(matrix.registry)
        for perm, support in rows:
            assert set(support) == {"Chromium", "Firefox", "Safari"}

    def test_latest_release_errors_without_releases(self):
        bare = SupportMatrix(releases=())
        with pytest.raises(ValueError):
            bare.latest_release(CHROMIUM)

    def test_engine_status_before_since_is_unsupported(self, matrix):
        assert matrix.status("compute-pressure", CHROMIUM, 100) is SupportStatus.UNSUPPORTED
        assert matrix.status("compute-pressure", CHROMIUM, 127) is SupportStatus.SUPPORTED
