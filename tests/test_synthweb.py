"""Tests for the synthetic web generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.registry.features import DEFAULT_REGISTRY
from repro.synthweb.distributions import PAPER, GeneratorRates
from repro.synthweb.generator import FailureMode, SyntheticWeb
from repro.synthweb.profiles import (
    default_widget_profiles,
    profiles_by_site,
)


class TestPaperMarginals:
    def test_failure_counts_sum_to_attempted(self):
        total = (PAPER.successful_sites + PAPER.ephemeral_errors
                 + PAPER.load_timeouts + PAPER.unreachable
                 + PAPER.minor_crawler_errors + PAPER.final_update_timeouts
                 + PAPER.excluded_incomplete)
        assert abs(total - PAPER.attempted_sites) <= 20

    def test_frame_counts_consistent(self):
        assert (PAPER.top_level_documents + PAPER.embedded_documents
                == PAPER.total_frames)

    def test_redirect_factor(self):
        assert 1.3 < PAPER.redirect_factor < 1.45

    def test_rates_are_probabilities(self):
        rates = GeneratorRates()
        for name in ("fail_ephemeral", "fail_timeout", "fail_unreachable",
                     "redirect_rate", "iframe_any_rate", "pp_header_rate",
                     "fp_header_rate", "header_syntax_error_rate",
                     "header_semantic_issue_rate", "csp_rate"):
            value = getattr(rates, name)
            assert 0.0 <= value <= 1.0, name


class TestWidgetProfiles:
    def test_profiles_unique_sites(self):
        profiles = default_widget_profiles()
        sites = [p.site for p in profiles]
        assert len(sites) == len(set(sites))

    def test_livechat_template_and_unused(self):
        """The Section 5.2 case study widget: template with wildcards,
        camera/microphone/clipboard-read expected unused."""
        livechat = profiles_by_site()["livechatinc.com"]
        assert livechat.delegation_rate > 0.99
        assert set(livechat.expected_unused_delegations()) >= {
            "camera", "microphone", "clipboard-read"}
        assert "microphone *" in livechat.allow_template

    def test_youtube_expected_unused_is_sensors(self):
        youtube = profiles_by_site()["youtube.com"]
        assert set(youtube.expected_unused_delegations()) == {
            "accelerometer", "gyroscope"}

    def test_delegated_features_parse_template(self):
        stripe = profiles_by_site()["stripe.com"]
        assert stripe.delegated_features() == ("payment",)

    def test_all_template_features_known(self):
        for profile in default_widget_profiles():
            for feature in profile.delegated_features():
                assert feature in DEFAULT_REGISTRY, (profile.site, feature)

    def test_widget_content_deterministic(self):
        import random
        youtube = profiles_by_site()["youtube.com"]
        a = youtube.build_content(random.Random(1))
        b = youtube.build_content(random.Random(1))
        assert [s.url for s in a.scripts] == [s.url for s in b.scripts]

    def test_paper_table3_ordering_encoded(self):
        """Embed counts must preserve the paper's Table 3 ordering for the
        top entries."""
        by_site = profiles_by_site()
        order = ["google.com", "youtube.com", "doubleclick.net",
                 "googlesyndication.com", "facebook.com", "yandex.com",
                 "twitter.com", "livechatinc.com", "criteo.com",
                 "cloudflare.com"]
        counts = [by_site[site].embed_count for site in order]
        assert counts == sorted(counts, reverse=True)


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = SyntheticWeb(50, seed=7)
        b = SyntheticWeb(50, seed=7)
        for rank in range(50):
            sa, sb = a.site(rank), b.site(rank)
            assert sa.url == sb.url
            assert sa.failure == sb.failure
            assert sa.headers == sb.headers
            assert len(sa.scripts) == len(sb.scripts)

    def test_different_seeds_differ(self):
        a = SyntheticWeb(200, seed=1)
        b = SyntheticWeb(200, seed=2)
        assert any(a.site(r).headers != b.site(r).headers for r in range(200))

    def test_origin_list_length(self):
        web = SyntheticWeb(10)
        assert len(web.origins()) == 10

    def test_rank_roundtrip(self):
        web = SyntheticWeb(100)
        host = web.host_for_rank(42)
        assert web.rank_for_host(host) == 42

    def test_rank_for_unknown_host(self):
        assert SyntheticWeb(10).rank_for_host("example.com") is None

    def test_rank_bounds_checked(self):
        web = SyntheticWeb(10)
        with pytest.raises(IndexError):
            web.site(10)
        with pytest.raises(ValueError):
            SyntheticWeb(0)

    def test_failure_rates_approximate_paper(self):
        web = SyntheticWeb(5000, seed=3)
        failures = [web.site(r).failure for r in range(5000)]
        ok_share = sum(1 for f in failures if f is FailureMode.NONE) / 5000
        assert abs(ok_share - PAPER.successful_sites / PAPER.attempted_sites) < 0.03

    def test_header_rate_approximates_paper(self):
        web = SyntheticWeb(5000, seed=4)
        with_pp = sum(1 for r in range(5000)
                      if "permissions-policy" in web.site(r).headers)
        assert abs(with_pp / 5000 - GeneratorRates().pp_header_rate) < 0.012

    def test_livechat_placements_almost_always_delegate(self):
        web = SyntheticWeb(30000, seed=5)
        placements = [
            placement
            for rank in range(0, 30000, 3)
            for placement in web.site(rank).widget_placements
            if placement.profile.site == "livechatinc.com"
        ]
        assert placements, "expected some LiveChat placements"
        delegated = sum(1 for p in placements if p.delegated)
        assert delegated / len(placements) > 0.95

    def test_site_content_includes_iframes_and_scripts(self):
        web = SyntheticWeb(300, seed=6)
        any_iframe = any(web.site(r).iframe_elements() for r in range(300))
        any_script = all(web.site(r).scripts for r in range(300))
        assert any_iframe and any_script

    @given(st.integers(min_value=0, max_value=499))
    @settings(max_examples=25, deadline=None)
    def test_every_site_spec_wellformed(self, rank):
        web = SyntheticWeb(500, seed=11)
        spec = web.site(rank)
        assert spec.url.startswith("https://")
        for iframe in spec.iframe_elements():
            assert iframe.src is not None or iframe.srcdoc is not None
