"""Every extension experiment driver must run and keep shape at the same
small scale the paper-table drivers are tested at."""

import pytest

from repro.experiments.extensions import ALL_EXTENSIONS
from repro.experiments.runner import run_measurement

SCALE = 2500


@pytest.fixture(scope="module")
def ctx():
    return run_measurement(SCALE, workers=2)


@pytest.mark.parametrize("name", sorted(ALL_EXTENSIONS))
def test_extension_driver_runs(ctx, name):
    result = ALL_EXTENSIONS[name](ctx)
    assert result.rendered
    assert result.experiment_id.startswith("ext_")


@pytest.mark.parametrize("name", [
    "ext_nested_chains", "ext_fingerprinting", "ext_clusters",
    "ext_rank_gradient", "ext_violations", "ext_prompts",
])
def test_scale_robust_extensions_keep_shape(ctx, name):
    assert ALL_EXTENSIONS[name](ctx).shape_ok, name
