"""Tests for the multi-seed robustness harness."""

import pytest

from repro.experiments.robustness import (
    expected_noise_floor,
    seed_sweep,
)


@pytest.fixture(scope="module")
def sweep():
    return seed_sweep(1200, seeds=(11, 22, 33), workers=2)


class TestSeedSweep:
    def test_needs_two_seeds(self):
        with pytest.raises(ValueError):
            seed_sweep(100, seeds=(1,))

    def test_covers_all_headline_metrics(self, sweep):
        assert len(sweep.metrics) >= 15

    def test_no_systematic_bias_on_major_metrics(self, sweep):
        """Paper values sit inside the sweep band for metrics ≥ 2 %
        (sub-percent ones are noise-dominated at this scale)."""
        for metric in sweep.metrics:
            if metric.paper_value >= 0.02:
                assert metric.paper_within_band, (
                    metric.metric, metric.mean, metric.paper_value)

    def test_spread_is_bounded(self, sweep):
        """Run-to-run variation stays small for the large shares (small
        shares are binomial-noise dominated at 1,200 sites)."""
        for metric in sweep.metrics:
            if metric.paper_value >= 0.25:
                assert metric.relative_spread < 0.15, metric.metric

    def test_min_max_bracket_mean(self, sweep):
        for metric in sweep.metrics:
            assert metric.minimum <= metric.mean <= metric.maximum


class TestNoiseFloor:
    def test_binomial_floor(self):
        assert expected_noise_floor(0.5, 10_000) == pytest.approx(0.005)

    def test_degenerate_inputs(self):
        assert expected_noise_floor(0.0, 100) == 0.0
        assert expected_noise_floor(0.5, 0) == 0.0

    def test_sweep_spread_near_floor(self, sweep):
        """Observed spread should be the same order as binomial noise —
        large excesses would mean hidden nondeterminism."""
        inv = next(m for m in sweep.metrics if m.metric == "any invocation")
        floor = expected_noise_floor(inv.mean, 1200)
        assert inv.stdev < floor * 12
