"""Cross-backend determinism, targeted resume loading, dataset caching,
and the persistent measurement cache (PR: process backend + perf)."""

import json
import pickle

import pytest

import repro.experiments.runner as runner
from repro.crawler.backends import (
    CHUNKS_PER_WORKER,
    FaultInjectionSpec,
    SyntheticFetcherSpec,
    chunk_ranks,
    shutdown_warm_pool,
)
from repro.crawler.pool import BACKENDS, CrawlDataset, CrawlerPool
from repro.crawler.resilience import RetryPolicy
from repro.crawler.storage import CrawlStore, export_jsonl
from repro.crawler.telemetry import CrawlTelemetry
from repro.synthweb.generator import SyntheticWeb

SITES = 60


@pytest.fixture(scope="module")
def web():
    return SyntheticWeb(SITES, seed=11)


@pytest.fixture(scope="module")
def serial_dataset(web):
    return CrawlerPool(web, workers=1, backend="serial").run()


def dataset_bytes(dataset, tmp_path, name):
    path = tmp_path / f"{name}.jsonl"
    export_jsonl(dataset.visits, path)
    return path.read_bytes()


def visit_bytes(visit):
    from repro.crawler.storage import _visit_to_dict
    return json.dumps(_visit_to_dict(visit)).encode()


class TestChunkRanks:
    def test_contiguous_and_complete(self):
        chunks = chunk_ranks(list(range(100)), 7)
        assert [rank for chunk in chunks for rank in chunk] == list(range(100))
        for chunk in chunks:
            assert chunk == list(range(chunk[0], chunk[0] + len(chunk)))

    def test_near_equal_sizes(self):
        sizes = [len(c) for c in chunk_ranks(list(range(100)), 7)]
        assert max(sizes) - min(sizes) <= 1

    def test_fewer_items_than_chunks(self):
        assert chunk_ranks([3, 4], 8) == [[3], [4]]

    def test_empty(self):
        assert chunk_ranks([], 4) == []

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            chunk_ranks([1], 0)


class TestBackendDeterminism:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("thread", 2), ("thread", 8),
        ("process", 1), ("process", 2), ("process", 8),
    ])
    def test_byte_identical_datasets(self, web, serial_dataset, tmp_path,
                                     backend, workers):
        dataset = CrawlerPool(web, workers=workers, backend=backend).run()
        assert dataset_bytes(dataset, tmp_path, "candidate") == \
            dataset_bytes(serial_dataset, tmp_path, "reference")

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_fault_injection_identical_across_backends(self, web, tmp_path,
                                                       backend):
        spec = FaultInjectionSpec(seed=5, failure_rate=0.3, crash_rate=0.1)
        reference = CrawlerPool(
            web, workers=1, backend="serial", fetcher_spec=spec,
            retry_policy=RetryPolicy(max_retries=2)).run()
        assert reference.failure_summary(), "faults should actually fire"
        dataset = CrawlerPool(
            web, workers=4, backend=backend, fetcher_spec=spec,
            retry_policy=RetryPolicy(max_retries=2)).run()
        assert dataset_bytes(dataset, tmp_path, "candidate") == \
            dataset_bytes(reference, tmp_path, "reference")

    def test_kill_and_resume_at_chunk_boundary(self, web, serial_dataset,
                                               tmp_path):
        """A run killed after some chunks completed resumes byte-identically
        with the process backend."""
        chunks = chunk_ranks(list(range(SITES)), 2 * CHUNKS_PER_WORKER)
        survived = [rank for chunk in chunks[:3] for rank in chunk]
        db = tmp_path / "killed.sqlite"
        with CrawlStore(db) as store:
            CrawlerPool(web, workers=2, backend="process").run(
                survived, store=store)
            assert store.stored_ranks() == set(survived)
            resumed = CrawlerPool(web, workers=2, backend="process").run(
                store=store, resume=True)
        assert dataset_bytes(resumed, tmp_path, "resumed") == \
            dataset_bytes(serial_dataset, tmp_path, "reference")

    def test_run_backend_override(self, web, serial_dataset, tmp_path):
        pool = CrawlerPool(web, workers=2, backend="thread")
        dataset = pool.run(backend="process")
        assert dataset_bytes(dataset, tmp_path, "candidate") == \
            dataset_bytes(serial_dataset, tmp_path, "reference")

    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("thread", 4), ("process", 2),
    ])
    def test_byte_identical_with_observability_on(self, web, serial_dataset,
                                                  tmp_path, backend, workers):
        """Tracing + metrics on must not change a single dataset byte."""
        from repro.obs import observed

        with observed():
            dataset = CrawlerPool(web, workers=workers,
                                  backend=backend).run()
        assert dataset_bytes(dataset, tmp_path, "traced") == \
            dataset_bytes(serial_dataset, tmp_path, "reference")


class TestBackendSelection:
    def test_auto_resolution(self, web):
        assert CrawlerPool(web, workers=1).resolved_backend() == "serial"
        assert CrawlerPool(web, workers=4).resolved_backend() == "thread"
        assert CrawlerPool(
            web, workers=4, backend="process").resolved_backend() == "process"

    def test_invalid_backend_rejected(self, web):
        with pytest.raises(ValueError, match="backend"):
            CrawlerPool(web, backend="rayon")
        with pytest.raises(ValueError, match="backend"):
            CrawlerPool(web).run(backend="rayon")
        assert "auto" in BACKENDS

    def test_process_rejects_fetcher_factory(self, web):
        pool = CrawlerPool(web, workers=2, backend="process",
                           fetcher_factory=lambda: None)
        with pytest.raises(ValueError, match="fetcher_spec"):
            pool.run()

    def test_factory_and_spec_are_exclusive(self, web):
        with pytest.raises(ValueError, match="not both"):
            CrawlerPool(web, fetcher_factory=lambda: None,
                        fetcher_spec=SyntheticFetcherSpec())

    def test_specs_are_picklable(self):
        spec = FaultInjectionSpec(seed=3, failure_rate=0.2)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert pickle.loads(pickle.dumps(SyntheticFetcherSpec())) \
            == SyntheticFetcherSpec()


class TestWarmWorkers:
    """The persistent worker pool: warm web reuse across chunks and runs,
    the recorded adaptive schedule, replay determinism, and shard-local
    sidecar hygiene."""

    def test_workers_build_one_web_each_not_one_per_chunk(self, web):
        shutdown_warm_pool()  # start from a cold executor
        pool = CrawlerPool(web, workers=2, backend="process",
                           chunk_schedule=[5])
        pool.run()
        stats = pool.last_run_stats
        assert stats["chunks"] == SITES // 5
        assert 1 <= len(stats["worker_pids"]) <= 2
        # The reuse claim: webs built == worker processes, not chunks.
        assert stats["web_builds_total"] == len(stats["worker_pids"])

    def test_warm_pool_survives_across_runs(self, web):
        shutdown_warm_pool()
        first = CrawlerPool(web, workers=2, backend="process")
        first.run()
        second = CrawlerPool(web, workers=2, backend="process")
        second.run()
        # Same executor, same web fingerprint: no worker rebuilt anything.
        assert second.last_run_stats["web_builds_total"] == \
            len(second.last_run_stats["worker_pids"])
        assert set(second.last_run_stats["worker_pids"]) <= \
            set(first.last_run_stats["worker_pids"])

    def test_adaptive_schedule_recorded_and_covers_run(self, web):
        pool = CrawlerPool(web, workers=2, backend="process")
        pool.run()
        schedule = pool.last_chunk_schedule
        assert schedule["mode"] == "adaptive"
        assert schedule["sizes"] and sum(schedule["sizes"]) == SITES
        assert schedule["total_sites"] == SITES

    def test_replay_reproduces_partition_and_bytes(self, web, serial_dataset,
                                                   tmp_path):
        adaptive = CrawlerPool(web, workers=2, backend="process")
        dataset = adaptive.run()
        sizes = adaptive.last_chunk_schedule["sizes"]
        replayed = CrawlerPool(web, workers=2, backend="process",
                               chunk_schedule=sizes)
        dataset_again = replayed.run()
        assert replayed.last_chunk_schedule["mode"] == "replay"
        assert replayed.last_chunk_schedule["sizes"] == sizes
        assert dataset_bytes(dataset_again, tmp_path, "replayed") == \
            dataset_bytes(dataset, tmp_path, "adaptive") == \
            dataset_bytes(serial_dataset, tmp_path, "reference")

    def test_chunk_schedule_validation(self, web):
        with pytest.raises(ValueError, match="chunk_schedule"):
            CrawlerPool(web, backend="process", chunk_schedule=[])
        with pytest.raises(ValueError, match="chunk_schedule"):
            CrawlerPool(web, backend="process", chunk_schedule=[4, 0])

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_shard_local_store_byte_identical(self, tmp_path, seed):
        """collect=False shard-local handoff: the store a process crawl
        writes through worker sidecars is byte-identical to a serial
        crawl's, and no ``.wchunk-*`` sidecar survives the run."""
        local_web = SyntheticWeb(40, seed=seed)
        with CrawlStore(tmp_path / f"serial-{seed}.sqlite") as store:
            CrawlerPool(local_web, workers=1, backend="serial").run(
                store=store)
            serial_bytes = _store_export_bytes(store, tmp_path)
        with CrawlStore(tmp_path / f"proc-{seed}.sqlite") as store:
            returned = CrawlerPool(local_web, workers=2,
                                   backend="process").run(
                store=store, collect=False)
            process_bytes = _store_export_bytes(store, tmp_path)
        assert returned.visits == []
        assert process_bytes == serial_bytes
        assert not list(tmp_path.glob(f"proc-{seed}.sqlite.wchunk-*"))

    def test_stale_sidecars_swept_on_run_start(self, web, tmp_path):
        db = tmp_path / "crawl.sqlite"
        stale = tmp_path / "crawl.sqlite.wchunk-dead-0007"
        with CrawlStore(db) as store:
            stale.write_bytes(b"leftover from a crashed run")
            CrawlerPool(web, workers=2, backend="process").run(
                range(10), store=store)
        assert not stale.exists()

    def test_interrupted_adaptive_run_resumes_byte_identical(
            self, web, serial_dataset, tmp_path):
        """Kill-and-resume under the adaptive scheduler: whatever chunk
        boundary the stop lands on, resume completes byte-identically."""
        db = tmp_path / "adaptive.sqlite"
        pool = CrawlerPool(web, workers=2, backend="process")

        def stop_early(done: int, total: int) -> None:
            if done >= 5:
                pool.request_stop()

        with CrawlStore(db) as store:
            pool.run(store=store, progress=stop_early, collect=False)
            interrupted = len(store.stored_ranks())
            assert 0 < interrupted < SITES
            resumed = CrawlerPool(web, workers=2, backend="process").run(
                store=store, resume=True)
        assert dataset_bytes(resumed, tmp_path, "resumed") == \
            dataset_bytes(serial_dataset, tmp_path, "reference")


def _store_export_bytes(store, tmp_path):
    out = tmp_path / "store-export.jsonl"
    export_jsonl(store.iter_visits(), out)
    return out.read_bytes()


class TestProcessTelemetry:
    def test_aggregated_from_chunks(self, web):
        telemetry = CrawlTelemetry()
        CrawlerPool(web, workers=2, backend="process").run(
            telemetry=telemetry)
        snapshot = telemetry.snapshot()
        assert snapshot.completed == SITES
        assert snapshot.backend == "process"
        assert snapshot.visits_by_worker
        assert all(worker.startswith("chunk-")
                   for worker in snapshot.visits_by_worker)
        assert sum(snapshot.visits_by_worker.values()) == SITES
        assert "(process)" in snapshot.progress_line()
        assert snapshot.progress_line().startswith(f"[{SITES}/{SITES}]")
        assert "backend     process" in snapshot.render()

    def test_serial_backend_label(self, web):
        telemetry = CrawlTelemetry()
        CrawlerPool(web, workers=1).run(range(5), telemetry=telemetry)
        assert telemetry.snapshot().backend == "serial"


class TestLoadVisits:
    def test_targeted_load(self, web, serial_dataset, tmp_path):
        db = tmp_path / "store.sqlite"
        with CrawlStore(db) as store:
            store.save_dataset(serial_dataset)
            wanted = [3, 17, 42]
            visits = store.load_visits(wanted)
            assert [v.rank for v in visits] == wanted
            expected = {v.rank: v for v in serial_dataset.visits}
            for visit in visits:
                assert visit_bytes(visit) == visit_bytes(expected[visit.rank])

    def test_missing_ranks_skipped(self, web, serial_dataset, tmp_path):
        with CrawlStore(tmp_path / "s.sqlite") as store:
            store.save_dataset(serial_dataset)
            visits = store.load_visits([5, SITES + 100])
            assert [v.rank for v in visits] == [5]

    def test_empty_request(self, tmp_path):
        with CrawlStore(tmp_path / "e.sqlite") as store:
            assert store.load_visits([]) == []

    def test_many_ranks_cross_chunk_boundary(self, web, serial_dataset,
                                             tmp_path, monkeypatch):
        import repro.crawler.storage as storage
        monkeypatch.setattr(storage, "_SQL_IN_CHUNK", 7)
        with CrawlStore(tmp_path / "chunked.sqlite") as store:
            store.save_dataset(serial_dataset)
            visits = store.load_visits(range(SITES))
            assert [v.rank for v in visits] == list(range(SITES))
            assert [visit_bytes(v) for v in visits] == \
                [visit_bytes(v) for v in serial_dataset.visits]


class TestSuccessfulCache:
    def test_cached_until_mutation(self, serial_dataset):
        dataset = CrawlDataset(visits=list(serial_dataset.visits))
        first = dataset.successful()
        assert dataset.successful() is first
        dataset.visits.append(serial_dataset.visits[0])
        assert dataset.successful() is not first

    def test_all_mutators_invalidate(self, serial_dataset):
        visit = serial_dataset.visits[0]
        dataset = CrawlDataset(visits=[visit])
        for mutate in (
                lambda: dataset.visits.extend([visit]),
                lambda: dataset.visits.insert(0, visit),
                lambda: dataset.visits.pop(),
                lambda: dataset.visits.sort(key=lambda v: v.rank),
                lambda: dataset.visits.reverse(),
                lambda: dataset.visits.__setitem__(0, visit),
                lambda: dataset.visits.clear(),
        ):
            before = dataset.successful()
            mutate()
            assert dataset.successful() is not before

    def test_reassigning_visits_invalidates(self, serial_dataset):
        dataset = CrawlDataset()
        assert dataset.successful() == []
        dataset.visits = list(serial_dataset.visits)
        assert len(dataset.successful()) == serial_dataset.successful_count

    def test_counts_match_filter(self, serial_dataset):
        assert serial_dataset.successful_count == \
            len([v for v in serial_dataset.visits if v.success])

    def test_dataset_pickle_roundtrip(self, serial_dataset):
        clone = pickle.loads(pickle.dumps(serial_dataset))
        assert clone.visits == serial_dataset.visits
        assert clone.successful_count == serial_dataset.successful_count
        clone.visits.append(serial_dataset.visits[0])
        assert clone.attempted == serial_dataset.attempted + 1


class TestMeasurementDiskCache:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        saved = dict(runner._CACHE)
        runner._CACHE.clear()
        yield
        runner._CACHE.clear()
        runner._CACHE.update(saved)

    def test_cold_run_writes_manifest_and_db(self):
        ctx = runner.run_measurement(240, seed=9)
        manifest_path, db_path = runner._cache_paths(240, 9)
        assert manifest_path.exists() and db_path.exists()
        manifest = json.loads(manifest_path.read_text())
        assert manifest == {
            "site_count": 240, "seed": 9, "shards": 1,
            "schema_version": runner.SCHEMA_VERSION,
            "code_fingerprint": runner.code_fingerprint(),
        }
        assert len(ctx.dataset.visits) == 240

    def test_warm_run_skips_the_crawl(self, monkeypatch):
        reference = runner.run_measurement(240, seed=9)
        runner._CACHE.clear()

        def no_crawl(*args, **kwargs):
            raise AssertionError("warm cache hit must not crawl")
        monkeypatch.setattr(runner.CrawlerPool, "run", no_crawl)
        warm = runner.run_measurement(240, seed=9)
        assert warm.dataset.visits == reference.dataset.visits

    def test_fingerprint_mismatch_recrawls(self, monkeypatch):
        runner.run_measurement(240, seed=9)
        runner._CACHE.clear()
        manifest_path, _ = runner._cache_paths(240, 9)
        manifest = json.loads(manifest_path.read_text())
        manifest["code_fingerprint"] = "0" * 16
        manifest_path.write_text(json.dumps(manifest))
        assert runner._load_cached(240, 9) is None
        ctx = runner.run_measurement(240, seed=9)  # re-crawls, rewrites
        assert len(ctx.dataset.visits) == 240
        assert json.loads(manifest_path.read_text())["code_fingerprint"] \
            == runner.code_fingerprint()

    def test_use_cache_false_ignores_disk(self, monkeypatch):
        runner.run_measurement(240, seed=9)
        runner._CACHE.clear()
        crawled = []

        class CountingPool(runner.CrawlerPool):
            def run(self, *args, **kwargs):
                crawled.append(True)
                return super().run(*args, **kwargs)
        monkeypatch.setattr(runner, "CrawlerPool", CountingPool)
        runner.run_measurement(240, seed=9, use_cache=False)
        assert crawled

    def test_no_cache_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert not runner.cache_enabled()
        runner.run_measurement(240, seed=9)
        manifest_path, db_path = runner._cache_paths(240, 9)
        assert not manifest_path.exists() and not db_path.exists()

    def test_backend_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        assert runner.configured_backend() == "process"
        monkeypatch.delenv("REPRO_BACKEND")
        assert runner.configured_backend() == "auto"

    def test_truncated_db_is_a_miss(self):
        runner.run_measurement(240, seed=9)
        runner._CACHE.clear()
        _, db_path = runner._cache_paths(240, 9)
        with CrawlStore(db_path) as store:
            store._conn.execute("DELETE FROM visits WHERE rank >= 100")
            store._conn.commit()
        assert runner._load_cached(240, 9) is None


class TestCliBackend:
    def test_crawl_backend_flag(self, tmp_path, capsys):
        from repro.cli import main
        database = str(tmp_path / "p.sqlite")
        assert main(["crawl", "--sites", "50", "--workers", "2",
                     "--backend", "process", "--database", database]) == 0
        out = capsys.readouterr().out
        assert "via process backend" in out
        assert "sites/s" in out

    def test_telemetry_backend_flag(self, capsys):
        from repro.cli import main
        assert main(["telemetry", "--sites", "40", "--workers", "2",
                     "--backend", "process", "--fault-rate", "0.2",
                     "--retries", "1"]) == 0
        out = capsys.readouterr().out
        assert "backend     process" in out

    def test_experiment_no_cache_flag(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        saved = dict(runner._CACHE)
        runner._CACHE.clear()
        try:
            assert main(["experiment", "table01", "--sites", "300",
                         "--no-cache"]) == 0
            assert "Table 1" in capsys.readouterr().out
            manifest_path, _ = runner._cache_paths(300, runner.DEFAULT_SEED)
            assert not manifest_path.exists()
        finally:
            runner._CACHE.clear()
            runner._CACHE.update(saved)
