"""Tests for the crash-resilience layer: retry policy, fault injection,
broad exception handling, checkpoint/resume, telemetry, and the
determinism guarantees that tie them together."""

import logging
import threading

import pytest

from repro.browser.page import FetchResponse
from repro.crawler.crawler import Crawler
from repro.crawler.errors import (
    EXCEPTION_BY_TAXONOMY,
    TRANSIENT_TAXONOMIES,
    LoadTimeoutError,
    UnreachableError,
)
from repro.crawler.fetcher import SyntheticFetcher
from repro.crawler.pool import CrawlerPool
from repro.crawler.records import SiteVisit
from repro.crawler.resilience import (
    FaultInjectingFetcher,
    InjectedCrashError,
    RetryPolicy,
)
from repro.crawler.storage import CrawlStore, export_jsonl, import_jsonl
from repro.crawler.telemetry import CrawlTelemetry
from repro.experiments.robustness import fault_injection_study
from repro.synthweb.generator import FailureMode, SyntheticWeb


@pytest.fixture(scope="module")
def web() -> SyntheticWeb:
    return SyntheticWeb(200, seed=2024)


def injecting_factory(web, *, seed=7, failure_rate=0.25, crash_rate=0.05):
    def factory():
        return FaultInjectingFetcher(
            SyntheticFetcher(web), seed=seed,
            failure_rate=failure_rate, crash_rate=crash_rate)
    return factory


class TestRetryPolicy:
    def test_transient_classes_default(self):
        policy = RetryPolicy()
        for taxonomy in TRANSIENT_TAXONOMIES:
            assert policy.is_transient(taxonomy)
        assert not policy.is_transient("unreachable")
        assert not policy.is_transient("minor-crawler-error")
        assert not policy.is_transient(None)

    def test_backoff_schedule_deterministic_and_bounded(self):
        policy = RetryPolicy(max_retries=3, backoff_base_seconds=2.0,
                             backoff_factor=3.0)
        assert policy.backoff_schedule() == (2.0, 6.0, 18.0)
        assert policy.backoff_schedule() == policy.backoff_schedule()
        assert not policy.should_retry("load-timeout", retries_done=3)
        assert policy.should_retry("load-timeout", retries_done=2)
        assert not policy.should_retry("unreachable", retries_done=0)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(transient_classes=frozenset({"no-such-class"}))
        with pytest.raises(ValueError):
            RetryPolicy().backoff_seconds(-1)


class _StaticFetcher:
    """Serves nothing: every URL raises the configured exception."""

    def __init__(self, exc: Exception) -> None:
        self.exc = exc
        self.calls = 0

    def fetch(self, url: str) -> FetchResponse:
        self.calls += 1
        raise self.exc


class TestFaultInjection:
    def test_deterministic_across_instances(self, web):
        def outcomes(fetcher):
            results = []
            for rank in range(60):
                try:
                    fetcher.fetch(web.origin_for_rank(rank))
                    results.append("ok")
                except Exception as exc:
                    results.append(type(exc).__name__)
            return results

        factory = injecting_factory(web)
        assert outcomes(factory()) == outcomes(factory())

    def test_attempts_roll_independent_faults(self, web):
        fetcher = injecting_factory(web, failure_rate=0.5, crash_rate=0.0)()
        ok_rank = next(r for r in range(200)
                       if web.site(r).failure is FailureMode.NONE)
        url = web.origin_for_rank(ok_rank)
        outcomes = []
        for _ in range(12):
            try:
                fetcher.fetch(url)
                outcomes.append("ok")
            except Exception as exc:
                outcomes.append(type(exc).__name__)
        # At 50 % both outcomes must appear across 12 independent attempts.
        assert "ok" in outcomes
        assert any(outcome != "ok" for outcome in outcomes)

    def test_real_failures_propagate_uninjected(self, web):
        fetcher = injecting_factory(web, failure_rate=1.0)()
        bad_rank = next(
            (r for r in range(200)
             if web.site(r).failure is FailureMode.UNREACHABLE), None)
        if bad_rank is None:
            pytest.skip("no unreachable site in sample")
        with pytest.raises(UnreachableError):
            fetcher.fetch(web.origin_for_rank(bad_rank))
        assert fetcher.stats.injected_failures == 0

    def test_crash_is_not_a_crawl_error(self, web):
        fetcher = injecting_factory(web, failure_rate=0.0, crash_rate=1.0)()
        ok_rank = next(r for r in range(200)
                       if web.site(r).failure is FailureMode.NONE)
        with pytest.raises(InjectedCrashError) as excinfo:
            fetcher.fetch(web.origin_for_rank(ok_rank))
        from repro.crawler.errors import CrawlError
        assert not isinstance(excinfo.value, CrawlError)
        assert fetcher.stats.injected_crashes == 1

    def test_latency_stats_and_timeout_conversion(self, web):
        ok_rank = next(r for r in range(200)
                       if web.site(r).failure is FailureMode.NONE)
        url = web.origin_for_rank(ok_rank)
        slow = FaultInjectingFetcher(
            SyntheticFetcher(web), seed=1, latency_rate=1.0,
            latency_seconds=5.0)
        slow.fetch(url)
        assert slow.stats.latency_events == 1
        assert slow.stats.latency_seconds == 5.0
        fatal = FaultInjectingFetcher(
            SyntheticFetcher(web), seed=1, latency_rate=1.0,
            latency_seconds=90.0, timeout_budget_seconds=60.0)
        with pytest.raises(LoadTimeoutError):
            fatal.fetch(url)

    def test_rejects_bad_rates_and_classes(self, web):
        with pytest.raises(ValueError):
            FaultInjectingFetcher(SyntheticFetcher(web), failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjectingFetcher(SyntheticFetcher(web),
                                  failure_classes=("bogus",))


class TestCrawlerResilience:
    def test_unexpected_exception_becomes_minor_crawler_error(self):
        crawler = Crawler(_StaticFetcher(ValueError("boom")))
        visit = crawler.visit("https://x.example", rank=5)
        assert not visit.success
        assert visit.failure == "minor-crawler-error"
        assert "ValueError: boom" in visit.error_detail
        assert "Traceback" in visit.error_detail

    def test_typed_failures_have_no_error_detail(self, web):
        crawler = Crawler(_StaticFetcher(LoadTimeoutError("late")))
        visit = crawler.visit("https://x.example")
        assert visit.failure == "load-timeout"
        assert visit.error_detail is None

    def test_transient_failures_retried_up_to_bound(self):
        fetcher = _StaticFetcher(LoadTimeoutError("late"))
        crawler = Crawler(fetcher, retry_policy=RetryPolicy(max_retries=2))
        visit = crawler.visit("https://x.example")
        assert fetcher.calls == 3
        assert visit.retries == 2
        assert not visit.success
        # Two failed attempts + two backoffs accumulate into the duration.
        base = Crawler(_StaticFetcher(LoadTimeoutError("late"))) \
            .visit("https://x.example").duration_seconds
        expected = 3 * base + sum(RetryPolicy(max_retries=2)
                                  .backoff_schedule())
        assert visit.duration_seconds == pytest.approx(expected)

    def test_non_transient_failures_never_retried(self):
        for exc in (UnreachableError("dead"), ValueError("bug")):
            fetcher = _StaticFetcher(exc)
            crawler = Crawler(fetcher,
                              retry_policy=RetryPolicy(max_retries=5))
            visit = crawler.visit("https://x.example")
            assert fetcher.calls == 1
            assert visit.retries == 0

    def test_retry_recovers_injected_transient_failure(self, web):
        # Find a site whose first attempt draws an injected transient
        # failure but a retry succeeds.
        factory = injecting_factory(web, failure_rate=0.4, crash_rate=0.0)
        no_retry = CrawlerPool(web, workers=1, fetcher_factory=factory)
        with_retry = CrawlerPool(web, workers=1, fetcher_factory=factory,
                                 retry_policy=RetryPolicy(max_retries=2))
        before = no_retry.run(range(80))
        after = with_retry.run(range(80))
        recovered = [
            (b, a) for b, a in zip(before.visits, after.visits)
            if not b.success and b.failure in TRANSIENT_TAXONOMIES
            and a.success]
        assert recovered, "expected at least one retry-recovered visit"
        assert all(a.retries > 0 for _, a in recovered)
        assert after.successful_count > before.successful_count


class TestPoolResilience:
    """The ISSUE acceptance scenario: >= 20 % of visits crash/fail mid-pool
    (including non-CrawlError exceptions) and the run still completes,
    persists everything, resumes correctly, and stays deterministic."""

    RANKS = range(100)
    POLICY = RetryPolicy(max_retries=2)

    def _pool(self, web, workers, retry=True):
        return CrawlerPool(
            web, workers=workers,
            retry_policy=self.POLICY if retry else None,
            fetcher_factory=injecting_factory(web))

    def test_hostile_run_completes_and_persists_every_visit(self, web,
                                                            tmp_path):
        telemetry = CrawlTelemetry()
        with CrawlStore(tmp_path / "hostile.sqlite") as store:
            dataset = self._pool(web, 4, retry=False).run(
                self.RANKS, store=store, telemetry=telemetry)
            stored = store.stored_ranks()
        failed = dataset.attempted - dataset.successful_count
        assert dataset.attempted == len(self.RANKS)
        assert failed / dataset.attempted >= 0.20
        # Crashes (non-CrawlError) were part of the hostility and were
        # recorded, traceback included.
        crashed = [v for v in dataset.visits
                   if v.failure == "minor-crawler-error" and v.error_detail]
        assert any("InjectedCrashError" in v.error_detail for v in crashed)
        # Every attempted visit hit the store, successes and failures alike.
        assert stored == set(self.RANKS)
        assert telemetry.snapshot().completed == len(self.RANKS)

    def test_workers_and_resume_boundary_invariant(self, web, tmp_path):
        serial = self._pool(web, 1).run(self.RANKS)
        parallel = self._pool(web, 8).run(self.RANKS)
        assert serial.visits == parallel.visits

        # Simulate a crash after 40 sites, then resume the rest.
        path = tmp_path / "checkpoint.sqlite"
        with CrawlStore(path) as store:
            self._pool(web, 4).run(list(self.RANKS)[:40], store=store)
        with CrawlStore(path) as store:
            resumed = self._pool(web, 4).run(self.RANKS, store=store,
                                             resume=True)
            stored = store.stored_ranks()
        assert resumed.visits == serial.visits
        assert stored == set(self.RANKS)

    def test_determinism_without_retries_too(self, web):
        serial = self._pool(web, 1, retry=False).run(self.RANKS)
        parallel = self._pool(web, 8, retry=False).run(self.RANKS)
        assert serial.visits == parallel.visits

    def test_resume_requires_store(self, web):
        with pytest.raises(ValueError):
            CrawlerPool(web).run(range(5), resume=True)

    def test_resume_skips_already_stored_ranks(self, web, tmp_path):
        with CrawlStore(tmp_path / "c.sqlite") as store:
            first = CrawlerPool(web, workers=2).run(range(20), store=store)
            counting = CrawlTelemetry()
            again = CrawlerPool(web, workers=2).run(
                range(20), store=store, resume=True, telemetry=counting)
        assert again.visits == first.visits
        snap = counting.snapshot()
        assert snap.completed == 0 and snap.resumed == 20
        # Regression: resumed visits count toward completion — a fully
        # resumed run is done with an empty queue, not queued forever.
        assert snap.total == 20
        assert snap.done
        assert snap.queue_depth == 0

    def test_partially_resumed_run_converges(self, web, tmp_path):
        """Regression: queue depth and done must account for resumed
        visits (previously a resumed run reported a non-empty queue even
        after every remaining rank was crawled)."""
        with CrawlStore(tmp_path / "p.sqlite") as store:
            CrawlerPool(web, workers=2).run(range(8), store=store)
            telemetry = CrawlTelemetry()
            CrawlerPool(web, workers=2).run(
                range(20), store=store, resume=True, telemetry=telemetry)
        snap = telemetry.snapshot()
        assert snap.total == 20
        assert snap.resumed == 8 and snap.completed == 12
        assert snap.queue_depth == 0
        assert snap.done
        assert snap.progress_line().startswith("[20/20]")
        assert "visits      20/20" in snap.render()


class TestStoreThreadSafety:
    def test_worker_thread_writes(self, web, tmp_path):
        """Writes from many non-main threads — the exact pattern that used
        to raise sqlite3.ProgrammingError."""
        dataset = CrawlerPool(web, workers=1).run(range(24))
        errors = []
        with CrawlStore(tmp_path / "mt.sqlite") as store:
            def write(visit):
                try:
                    store.save_visit(visit)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
            threads = [threading.Thread(target=write, args=(visit,))
                       for visit in dataset.visits]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            assert store.stored_ranks() == set(range(24))

    def test_wal_mode_enabled(self, tmp_path):
        with CrawlStore(tmp_path / "wal.sqlite") as store:
            mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"

    def test_migrates_pre_resilience_schema(self, tmp_path):
        import sqlite3
        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(path)
        conn.executescript("""
            CREATE TABLE visits (
                rank INTEGER PRIMARY KEY,
                requested_url TEXT NOT NULL, final_url TEXT NOT NULL,
                success INTEGER NOT NULL, failure TEXT,
                top_level_document_count INTEGER NOT NULL,
                skipped_lazy_iframes INTEGER NOT NULL,
                iframe_load_failures INTEGER NOT NULL,
                duration_seconds REAL NOT NULL);
        """)
        conn.execute("INSERT INTO visits VALUES (3,'u','u',0,"
                     "'load-timeout',1,0,0,60.0)")
        conn.commit()
        conn.close()
        with CrawlStore(path) as store:
            loaded = store.load_dataset()
        assert loaded.visits[0].retries == 0
        assert loaded.visits[0].error_detail is None


class TestOrphanTolerance:
    def test_orphan_child_rows_skipped_with_counts(self, web, tmp_path,
                                                   caplog):
        path = tmp_path / "corrupt.sqlite"
        dataset = CrawlerPool(web, workers=1).run(range(10))
        victim = next(v for v in dataset.successful() if v.frames)
        with CrawlStore(path) as store:
            for visit in dataset.visits:
                store.save_visit(visit)
            # Simulate an interrupted save: child rows without their visit.
            store._conn.execute("DELETE FROM visits WHERE rank = ?",
                                (victim.rank,))
            store._conn.commit()
            with caplog.at_level(logging.WARNING,
                                 logger="repro.crawler.storage"):
                loaded = store.load_dataset()
            orphans = store.last_orphan_counts
        assert len(loaded.visits) == 9
        assert all(v.rank != victim.rank for v in loaded.visits)
        assert orphans.get("frames", 0) == len(victim.frames)
        assert orphans.get("calls", 0) == len(victim.calls)
        assert any("orphan" in record.message for record in caplog.records)

    def test_clean_store_reports_no_orphans(self, web, tmp_path):
        with CrawlStore(tmp_path / "clean.sqlite") as store:
            store.save_dataset(CrawlerPool(web, workers=1).run(range(5)))
            store.load_dataset()
            assert store.last_orphan_counts == {}


class TestRoundTrips:
    @pytest.fixture(scope="class")
    def hostile_dataset(self, web):
        return CrawlerPool(
            web, workers=4, retry_policy=RetryPolicy(max_retries=2),
            fetcher_factory=injecting_factory(web)).run(range(60))

    def test_sqlite_round_trip_exact(self, hostile_dataset, tmp_path):
        path = tmp_path / "rt.sqlite"
        with CrawlStore(path) as store:
            store.save_dataset(hostile_dataset)
        with CrawlStore(path) as store:
            loaded = store.load_dataset()
        assert loaded.visits == hostile_dataset.visits

    def test_sqlite_preserves_retry_and_error_fields(self, hostile_dataset,
                                                     tmp_path):
        assert any(v.retries for v in hostile_dataset.visits)
        assert any(v.error_detail for v in hostile_dataset.visits)
        path = tmp_path / "fields.sqlite"
        with CrawlStore(path) as store:
            store.save_dataset(hostile_dataset)
            loaded = store.load_dataset()
        assert [v.retries for v in loaded.visits] \
            == [v.retries for v in hostile_dataset.visits]
        assert [v.error_detail for v in loaded.visits] \
            == [v.error_detail for v in hostile_dataset.visits]

    def test_jsonl_round_trip_exact(self, hostile_dataset, tmp_path):
        path = tmp_path / "full.jsonl"
        count = export_jsonl(hostile_dataset.visits, path)
        assert count == len(hostile_dataset.visits)
        assert import_jsonl(path) == hostile_dataset.visits

    def test_jsonl_exports_previously_dropped_fields(self, hostile_dataset,
                                                     tmp_path):
        import json
        path = tmp_path / "fields.jsonl"
        export_jsonl(hostile_dataset.visits[:5], path)
        record = json.loads(path.read_text().splitlines()[0])
        for key in ("prompts", "scripts", "duration_seconds",
                    "skipped_lazy_iframes", "iframe_load_failures",
                    "top_level_document_count", "retries", "error_detail"):
            assert key in record
        scripted = next(v for v in hostile_dataset.visits if v.scripts)
        export_jsonl([scripted], path)
        record = json.loads(path.read_text().splitlines()[0])
        assert record["scripts"][0]["source"] == scripted.scripts[0].source


class TestTelemetry:
    def test_counters_and_rates(self):
        ticks = iter([0.0, 10.0, 10.0, 10.0])
        telemetry = CrawlTelemetry(clock=lambda: next(ticks))
        telemetry.start(4)
        ok = SiteVisit(rank=0, requested_url="u", final_url="u",
                       success=True, duration_seconds=30.0, retries=1)
        bad = SiteVisit(rank=1, requested_url="u", final_url="u",
                        success=False, failure="load-timeout",
                        duration_seconds=60.0, retries=2)
        telemetry.record_visit(ok, worker="w0")
        telemetry.record_visit(bad, worker="w1")
        snap = telemetry.snapshot()
        assert snap.completed == 2 and snap.succeeded == 1
        assert snap.failed == 1
        assert snap.retries == 3
        assert snap.queue_depth == 2
        assert snap.failure_counts == {"load-timeout": 1}
        assert snap.visits_by_worker == {"w0": 1, "w1": 1}
        assert snap.sites_per_second == pytest.approx(0.2)
        assert snap.simulated_seconds_per_site == pytest.approx(45.0)
        assert not snap.done

    def test_render_contains_key_fields(self):
        telemetry = CrawlTelemetry()
        telemetry.start(2)
        telemetry.record_visit(
            SiteVisit(rank=0, requested_url="u", final_url="u",
                      success=False, failure="unreachable"), worker="w0")
        text = telemetry.render()
        assert "unreachable=1" in text
        assert "queue depth 1" in text
        assert "w0=1" in text
        line = telemetry.snapshot().progress_line()
        assert line.startswith("[1/2]")


class TestFaultInjectionStudy:
    def test_report_shape(self):
        report = fault_injection_study(150, workers=4)
        assert report.injected_failure_share \
            >= sum(report.baseline_failures.values()) / 150
        assert report.transient_classes_shrunk
        assert report.unreachable_unchanged
        assert report.retries_spent > 0
        rendered = report.render()
        assert "baseline" in rendered and "+retries" in rendered
        assert "(transient)" in rendered


class TestTaxonomyRegistry:
    def test_registry_covers_all_failure_modes(self):
        assert {mode.value for mode in FailureMode
                if mode is not FailureMode.NONE} \
            == set(EXCEPTION_BY_TAXONOMY)
        for taxonomy, exc_type in EXCEPTION_BY_TAXONOMY.items():
            assert exc_type.taxonomy == taxonomy

    def test_transient_subset(self):
        assert TRANSIENT_TAXONOMIES < set(EXCEPTION_BY_TAXONOMY)
        assert "unreachable" not in TRANSIENT_TAXONOMIES


class TestGracefulShutdown:
    """DESIGN.md §4g: SIGINT/SIGTERM mid-crawl flushes the checkpoint and
    leaves a store that ``resume=True`` completes to a byte-identical
    dataset, with the interruption visible in telemetry."""

    RANKS = list(range(24))

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_sigterm_mid_crawl_then_resume(self, web, backend, tmp_path):
        import os
        import signal

        baseline = CrawlerPool(web, workers=2).run(self.RANKS)
        path = tmp_path / f"kill-{backend}.sqlite"
        killed = False

        def kill_once(done, total):
            nonlocal killed
            if not killed and done >= 2:
                killed = True
                os.kill(os.getpid(), signal.SIGTERM)

        telemetry = CrawlTelemetry()
        with CrawlStore(path) as store:
            pool = CrawlerPool(web, workers=2, backend=backend)
            partial = pool.run(self.RANKS, kill_once, store=store,
                               telemetry=telemetry, handle_signals=True)
            assert pool.stop_requested
            stored = store.stored_ranks()
        # The run stopped early, checkpointed what finished, and said so.
        assert killed
        assert len(partial.visits) < len(self.RANKS)
        assert stored == {visit.rank for visit in partial.visits}
        snap = telemetry.snapshot()
        assert snap.interrupted
        assert "interrupted yes" in snap.render()
        # The default handler is back once run() returns.
        assert signal.getsignal(signal.SIGTERM) == signal.SIG_DFL

        with CrawlStore(path) as store:
            resumed = CrawlerPool(web, workers=2, backend=backend).run(
                self.RANKS, store=store, resume=True)
        assert resumed.visits == baseline.visits

    def test_request_stop_is_programmatic_equivalent(self, web, tmp_path):
        telemetry = CrawlTelemetry()
        path = tmp_path / "stop.sqlite"
        with CrawlStore(path) as store:
            pool = CrawlerPool(web, workers=1, backend="serial")

            def stop_at(done, total):
                if done == 3:
                    pool.request_stop()

            partial = pool.run(self.RANKS, stop_at, store=store,
                               telemetry=telemetry)
        assert len(partial.visits) == 3
        assert telemetry.snapshot().interrupted
        with CrawlStore(path) as store:
            resumed = CrawlerPool(web, workers=1).run(
                self.RANKS, store=store, resume=True)
        assert resumed.visits == CrawlerPool(web).run(self.RANKS).visits

    def test_stop_flag_clears_between_runs(self, web):
        pool = CrawlerPool(web, workers=1, backend="serial")
        pool.request_stop()
        dataset = pool.run(range(3))
        assert len(dataset.visits) == 3

    @pytest.mark.parametrize("sig_name", ["SIGINT", "SIGTERM"])
    def test_signal_with_queued_and_running_process_chunks(
            self, web, sig_name, tmp_path):
        """A stop mid-process-crawl cancels *queued* chunks and drains
        *running* ones: the checkpoint holds exactly the drained chunks'
        ranks, nothing from a cancelled chunk, and resume completes
        byte-identically."""
        import glob
        import os
        import signal

        ranks = list(range(32))
        baseline = CrawlerPool(web, workers=2).run(ranks)
        # 16 two-rank chunks on 2 workers guarantees a deep queue: when
        # the signal lands, at most 2 chunks run and the rest are queued.
        pool = CrawlerPool(web, workers=2, backend="process",
                           chunk_schedule=[2] * 16)
        path = tmp_path / f"chunked-{sig_name}.sqlite"
        fired = False

        def kill_once(done, total):
            nonlocal fired
            if not fired and done >= 2:
                fired = True
                os.kill(os.getpid(), signal.Signals[sig_name])

        telemetry = CrawlTelemetry()
        with CrawlStore(path) as store:
            partial = pool.run(ranks, kill_once, store=store,
                               telemetry=telemetry, handle_signals=True)
            stored = store.stored_ranks()
        assert fired and pool.stop_requested
        # Something finished, but the cancelled queue never ran: the
        # store holds whole 2-rank chunks only, and strictly fewer than
        # all of them.
        assert 0 < len(stored) < len(ranks)
        assert stored == {visit.rank for visit in partial.visits}
        for start in range(0, len(ranks), 2):
            chunk = {start, start + 1}
            assert chunk <= stored or not (chunk & stored)
        assert telemetry.snapshot().interrupted
        # Drained-not-cancelled chunks were merged, not abandoned as
        # sidecar files.
        assert not glob.glob(str(tmp_path / "*.wchunk-*"))

        with CrawlStore(path) as store:
            resumed = CrawlerPool(web, workers=2, backend="process").run(
                ranks, store=store, resume=True)
        assert resumed.visits == baseline.visits


class TestQuarantine:
    """Integrity verification: corrupt rows are counted and quarantined,
    never fatal to load_dataset."""

    def _store_with_visits(self, web, tmp_path, count=8):
        path = tmp_path / "integrity.sqlite"
        store = CrawlStore(path)
        dataset = CrawlerPool(web, workers=1).run(range(count), store=store)
        return store, dataset

    def test_clean_store_verifies(self, web, tmp_path):
        store, _ = self._store_with_visits(web, tmp_path)
        with store:
            report = store.verify()
        assert report.ok
        assert report.verified_rows == 8 and report.legacy_rows == 0
        assert "0 corrupt" in report.render() or report.render()

    def test_legacy_null_checksum_is_tolerated(self, web, tmp_path):
        store, _ = self._store_with_visits(web, tmp_path)
        with store:
            store._conn.execute(
                "UPDATE visits SET checksum = NULL WHERE rank = 2")
            store._conn.commit()
            report = store.verify()
            loaded = store.load_dataset()
        assert report.ok and report.legacy_rows == 1
        assert len(loaded.visits) == 8

    def test_corrupt_child_rows_counted_not_fatal(self, web, tmp_path,
                                                  caplog):
        store, dataset = self._store_with_visits(web, tmp_path)
        with store:
            store._conn.execute(
                "UPDATE frames SET iframe_attributes = '[oops' "
                "WHERE rank = 4 AND frame_id = 0")
            store._conn.commit()
            with caplog.at_level(logging.WARNING):
                loaded = store.load_dataset()
            assert store.last_corrupt_counts.get("frames", 0) >= 1
            assert any("verify-store" in record.message
                       for record in caplog.records)
            # All eight visits survive; only the undecodable frame
            # row is skipped.
            assert {v.rank for v in loaded.visits} == set(range(8))
            repaired = store.verify(repair=True)
            assert [bad.rank for bad in repaired.corrupt] == [4]
            assert store.quarantine_rows()[0][0] == 4
            # Re-saving the visit clears the quarantine entry.
            store.save_visit(dataset.visits[4])
            assert store.quarantine_rows() == []
            assert store.verify().ok

    def test_quarantine_payload_preserves_raw_rows(self, web, tmp_path):
        store, _ = self._store_with_visits(web, tmp_path)
        with store:
            store._conn.execute(
                "UPDATE visits SET duration_seconds = duration_seconds + 1 "
                "WHERE rank = 1")
            store._conn.commit()
            store.verify(repair=True)
            rows = store._conn.execute(
                "SELECT payload FROM quarantine WHERE rank = 1").fetchall()
        assert len(rows) == 1
        import json
        payload = json.loads(rows[0][0])
        assert payload["visits"][0][0] == 1  # rank column preserved


class TestJsonlHardening:
    def _export(self, web, tmp_path):
        dataset = CrawlerPool(web, workers=1).run(range(5))
        path = tmp_path / "visits.jsonl"
        assert export_jsonl(dataset.visits, path) == 5
        return dataset, path

    def test_round_trip_with_trailer(self, web, tmp_path):
        from repro.crawler.storage import JsonlStats

        dataset, path = self._export(web, tmp_path)
        stats = JsonlStats()
        visits = import_jsonl(path, stats=stats)
        assert visits == dataset.visits
        assert stats.imported == 5 and stats.skipped == 0
        assert stats.trailer_count == 5

    def test_malformed_line_raises_by_default(self, web, tmp_path):
        from repro.crawler.storage import JsonlImportError

        _, path = self._export(web, tmp_path)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[2] = '{"rank": 2, "requested_url": '  # truncated JSON
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(JsonlImportError, match="malformed record"):
            import_jsonl(path)

    def test_malformed_line_skips_with_counted_warning(self, web, tmp_path,
                                                       caplog):
        from repro.crawler.storage import JsonlStats

        dataset, path = self._export(web, tmp_path)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[2] = "not json at all"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        stats = JsonlStats()
        with caplog.at_level(logging.WARNING):
            visits = import_jsonl(path, on_error="skip", stats=stats)
        assert stats.imported == 4 and stats.skipped == 1
        assert [v.rank for v in visits] == [0, 1, 3, 4]
        assert any("skipped 1 malformed" in record.message
                   for record in caplog.records)

    def test_truncated_export_detected_by_trailer(self, web, tmp_path):
        from repro.crawler.storage import JsonlImportError

        _, path = self._export(web, tmp_path)
        lines = path.read_text(encoding="utf-8").splitlines()
        del lines[1]  # silently lose a record, keep the trailer
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(JsonlImportError, match="truncated export"):
            import_jsonl(path)
        # skip mode downgrades the mismatch to a warning.
        assert len(import_jsonl(path, on_error="skip")) == 4

    def test_invalid_on_error_rejected(self, web, tmp_path):
        _, path = self._export(web, tmp_path)
        with pytest.raises(ValueError, match="on_error"):
            import_jsonl(path, on_error="ignore")

    def test_no_tmp_file_left_behind(self, web, tmp_path):
        self._export(web, tmp_path)
        assert not list(tmp_path.glob("*.tmp"))
