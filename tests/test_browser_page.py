"""Tests for page loading, frame trees, and prompts."""

import pytest

from repro.browser.dom import DocumentContent, IframeElement
from repro.browser.page import FetchResponse, PageLoadConfig, PageLoader
from repro.browser.prompts import PromptOutcome
from repro.browser.scripts import ApiCall, Script


class DictFetcher:
    """Minimal fetcher serving canned responses."""

    def __init__(self, responses):
        self.responses = responses

    def fetch(self, url):
        from repro.browser.page import FetchFailure
        if url not in self.responses:
            raise FetchFailure(f"no such url: {url}")
        return self.responses[url]


def _response(url, *, headers=None, scripts=(), iframes=(), redirect_chain=()):
    return FetchResponse(url=url, status=200, headers=dict(headers or {}),
                         content=DocumentContent(scripts=list(scripts),
                                                 iframes=list(iframes)),
                         redirect_chain=tuple(redirect_chain))


class TestBasicLoading:
    def test_single_document(self):
        loader = PageLoader(DictFetcher({
            "https://a.com": _response("https://a.com")}))
        page = loader.load("https://a.com")
        assert len(page.frames) == 1
        assert page.top.is_top_level

    def test_iframe_loaded_with_policy_chain(self):
        responses = {
            "https://a.com": _response(
                "https://a.com",
                headers={"Permissions-Policy": "camera=(self)"},
                iframes=[IframeElement(src="https://b.com/w",
                                       allow="camera")]),
            "https://b.com/w": _response("https://b.com/w"),
        }
        page = PageLoader(DictFetcher(responses)).load("https://a.com")
        assert len(page.frames) == 2
        child = page.frames.embedded()[0]
        # case 4 of Table 1: header self + allow camera → child blocked
        engine = PageLoader(DictFetcher(responses)).engine
        assert not engine.is_enabled("camera", child.policy_frame)

    def test_iframe_failure_recorded_not_fatal(self):
        responses = {"https://a.com": _response(
            "https://a.com",
            iframes=[IframeElement(src="https://dead.example/x")])}
        page = PageLoader(DictFetcher(responses)).load("https://a.com")
        assert len(page.frames) == 1
        assert page.iframe_load_failures

    def test_local_iframe_needs_no_fetch(self):
        responses = {"https://a.com": _response(
            "https://a.com",
            iframes=[IframeElement(srcdoc="<p>hi</p>")])}
        page = PageLoader(DictFetcher(responses)).load("https://a.com")
        local = page.frames.local_documents()
        assert len(local) == 1
        assert local[0].is_local_scheme
        assert local[0].headers == {}

    def test_redirect_chain_counts_top_level_documents(self):
        responses = {"https://a.com": _response(
            "https://www.a.com/", redirect_chain=("https://a.com",))}
        page = PageLoader(DictFetcher(responses)).load("https://a.com")
        assert page.top_level_document_count == 2

    def test_max_depth_limits_nesting(self):
        responses = {
            "https://a.com": _response("https://a.com", iframes=[
                IframeElement(src="https://b.com/1")]),
            "https://b.com/1": _response("https://b.com/1", iframes=[
                IframeElement(src="https://c.com/2")]),
            "https://c.com/2": _response("https://c.com/2"),
        }
        config = PageLoadConfig(max_depth=1)
        page = PageLoader(DictFetcher(responses), config=config).load(
            "https://a.com")
        assert len(page.frames) == 2  # top + first level only


class TestLazyIframes:
    def _responses(self):
        return {
            "https://a.com": _response("https://a.com", iframes=[
                IframeElement(src="https://b.com/w", loading="lazy")]),
            "https://b.com/w": _response("https://b.com/w"),
        }

    def test_scrolling_loads_lazy_iframes(self):
        """The paper's crawler scrolls to lazy iframes deliberately."""
        page = PageLoader(DictFetcher(self._responses())).load("https://a.com")
        assert len(page.frames) == 2
        assert page.skipped_lazy_iframes == 0

    def test_without_scrolling_lazy_iframes_skipped(self):
        config = PageLoadConfig(scroll_to_lazy_iframes=False)
        page = PageLoader(DictFetcher(self._responses()),
                          config=config).load("https://a.com")
        assert len(page.frames) == 1
        assert page.skipped_lazy_iframes == 1


class TestScriptsAndPrompts:
    def test_invocations_collected_per_frame(self):
        script = Script(url="https://cdn.t.example/t.js", source="",
                        operations=(ApiCall("navigator.getBattery"),))
        responses = {
            "https://a.com": _response("https://a.com", scripts=[script],
                                       iframes=[IframeElement(
                                           src="https://b.com/w")]),
            "https://b.com/w": _response("https://b.com/w", scripts=[script]),
        }
        page = PageLoader(DictFetcher(responses)).load("https://a.com")
        assert len(page.invocations) == 2
        frame_ids = {record.frame_id for record in page.invocations}
        assert frame_ids == {0, 1}

    def test_powerful_invocation_triggers_prompt_with_top_site(self):
        """Section 2.2.4: the prompt names the top-level site even for
        embedded requests."""
        script = Script(url=None, source="", operations=(
            ApiCall("navigator.mediaDevices.getUserMedia", ("camera",)),))
        responses = {
            "https://a.com": _response("https://a.com", iframes=[
                IframeElement(src="https://b.com/w", allow="camera")]),
            "https://b.com/w": _response("https://b.com/w", scripts=[script]),
        }
        page = PageLoader(DictFetcher(responses)).load("https://a.com")
        assert len(page.prompts) == 1
        prompt = page.prompts[0]
        assert prompt.permission == "camera"
        assert prompt.display_site == "a.com"
        assert "a.com is asking to" in prompt.text
        assert prompt.outcome is PromptOutcome.DISMISSED

    def test_storage_access_prompt_names_embedded_site(self):
        script = Script(url=None, source="", operations=(
            ApiCall("document.requestStorageAccess"),))
        responses = {
            "https://a.com": _response("https://a.com", iframes=[
                IframeElement(src="https://b.com/w")]),
            "https://b.com/w": _response("https://b.com/w", scripts=[script]),
        }
        page = PageLoader(DictFetcher(responses)).load("https://a.com")
        assert page.prompts
        assert page.prompts[0].display_site == "b.com"

    def test_blocked_invocation_does_not_prompt(self):
        script = Script(url=None, source="", operations=(
            ApiCall("navigator.mediaDevices.getUserMedia", ("camera",)),))
        responses = {
            "https://a.com": _response(
                "https://a.com", headers={"Permissions-Policy": "camera=()"},
                scripts=[script]),
        }
        page = PageLoader(DictFetcher(responses)).load("https://a.com")
        assert page.prompts == []

    def test_non_powerful_invocation_does_not_prompt(self):
        script = Script(url=None, source="", operations=(
            ApiCall("navigator.getBattery"),))
        responses = {"https://a.com": _response("https://a.com",
                                                scripts=[script])}
        page = PageLoader(DictFetcher(responses)).load("https://a.com")
        assert page.prompts == []
