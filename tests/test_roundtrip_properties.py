"""Property-based round-trip and invariant tests across the policy stack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policy.allow_attr import (
    parse_allow_attribute,
    serialize_allow_attribute,
)
from repro.policy.allowlist import Allowlist
from repro.policy.csp import ContentSecurityPolicy
from repro.policy.header import (
    parse_permissions_policy_header,
    serialize_permissions_policy,
)
from repro.policy.origin import Origin
from repro.registry.browsers import ALL_BROWSERS
from repro.registry.features import DEFAULT_REGISTRY
from repro.registry.support import SupportStatus, default_support_matrix

FEATURES = st.sampled_from([p.name for p in DEFAULT_REGISTRY.policy_controlled()])

ORIGINS = st.from_regex(r"[a-z]{1,8}\.[a-z]{2,5}", fullmatch=True).map(
    lambda host: Origin.parse(f"https://{host}"))

ALLOWLISTS = st.one_of(
    st.just(Allowlist.nobody()),
    st.just(Allowlist.self_only()),
    st.just(Allowlist.all_origins()),
    st.lists(ORIGINS, min_size=1, max_size=3, unique_by=lambda o: o.host).map(
        lambda origins: Allowlist.of(*origins, self_=True)),
)


def _allowlists_equal(a: Allowlist, b: Allowlist) -> bool:
    return (a.star, a.self_, a.src,
            tuple(o.serialize() for o in a.origins)) == (
        b.star, b.self_, b.src, tuple(o.serialize() for o in b.origins))


class TestHeaderRoundTrip:
    @given(st.dictionaries(FEATURES, ALLOWLISTS, min_size=1, max_size=8))
    def test_serialize_parse_identity(self, directives):
        raw = serialize_permissions_policy(directives)
        parsed = parse_permissions_policy_header(raw)
        assert set(parsed.directives) == set(directives)
        for feature, allowlist in directives.items():
            assert _allowlists_equal(parsed.directives[feature], allowlist), \
                feature

    @given(st.dictionaries(FEATURES, ALLOWLISTS, min_size=1, max_size=8))
    def test_serialization_is_stable(self, directives):
        """Serializing a parse of a serialization is a fixed point."""
        once = serialize_permissions_policy(directives)
        twice = serialize_permissions_policy(
            parse_permissions_policy_header(once).directives)
        assert once == twice


class TestAllowAttributeRoundTrip:
    ALLOW_LISTS = st.one_of(
        st.just(Allowlist.src_only()),
        st.just(Allowlist.nobody()),
        st.just(Allowlist.all_origins()),
        st.just(Allowlist.self_only()),
        st.lists(ORIGINS, min_size=1, max_size=2,
                 unique_by=lambda o: o.host).map(
            lambda origins: Allowlist.of(*origins)),
    )

    @given(st.dictionaries(FEATURES, ALLOW_LISTS, min_size=1, max_size=6))
    def test_serialize_parse_identity(self, entries):
        raw = serialize_allow_attribute(entries)
        parsed = parse_allow_attribute(raw)
        assert set(parsed.features) == set(entries)
        for feature, allowlist in entries.items():
            assert _allowlists_equal(parsed.entry(feature).allowlist,
                                     allowlist), feature


class TestCspRobustness:
    @given(st.text(max_size=120))
    def test_parse_never_raises(self, raw):
        policy = ContentSecurityPolicy.parse(raw)
        # allows_frame must be total on any parsed policy.
        policy.allows_frame("https://x.example",
                            self_origin=Origin.parse("https://a.com"))

    @given(st.lists(st.sampled_from(
        ["'self'", "'none'", "*", "data:", "https://a.com", "*.b.org"]),
        min_size=0, max_size=4))
    def test_frame_src_none_dominates(self, extra):
        """A directive containing ONLY 'none' matches nothing; with other
        sources present, 'none' is ignored per CSP semantics."""
        policy = ContentSecurityPolicy.parse(
            "frame-src 'none' " + " ".join(extra))
        allowed = policy.allows_frame("https://a.com",
                                      self_origin=Origin.parse("https://a.com"))
        if not extra:
            assert not allowed


class TestSupportMatrixInvariants:
    @settings(max_examples=40)
    @given(st.sampled_from([p.name for p in DEFAULT_REGISTRY]),
           st.sampled_from(ALL_BROWSERS))
    def test_status_never_unsupported_after_supported_without_removal(
            self, permission, browser):
        """Once supported, a permission only leaves via REMOVED — support
        history is a valid state machine."""
        matrix = default_support_matrix()
        seen_supported = False
        for _release, status in matrix.history(permission, browser):
            if status is SupportStatus.SUPPORTED:
                seen_supported = True
            elif seen_supported:
                assert status is SupportStatus.REMOVED

    @settings(max_examples=40)
    @given(st.sampled_from([p.name for p in DEFAULT_REGISTRY]))
    def test_chromium_supported_implies_anywhere(self, permission):
        matrix = default_support_matrix()
        from repro.registry.browsers import CHROMIUM
        if matrix.currently_supported(permission, CHROMIUM):
            assert matrix.supported_anywhere(permission)
