"""Tests for Permissions-Policy header parsing (paper Sections 2.2.3, 4.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.policy.header import (
    DirectiveIssue,
    HeaderParseError,
    parse_permissions_policy_header,
    serialize_permissions_policy,
)
from repro.policy.origin import Origin
from repro.registry.features import DEFAULT_REGISTRY

KNOWN = frozenset(p.name for p in DEFAULT_REGISTRY)
SELF = Origin.parse("https://example.org")
IFRAME = Origin.parse("https://iframe.com")


class TestValidHeaders:
    def test_disable_directive(self):
        parsed = parse_permissions_policy_header("camera=()")
        assert parsed.directives["camera"].is_empty

    def test_self_directive(self):
        parsed = parse_permissions_policy_header("camera=(self)")
        allowlist = parsed.directives["camera"]
        assert allowlist.self_ and not allowlist.star

    def test_bare_self_item(self):
        parsed = parse_permissions_policy_header("camera=self")
        assert parsed.directives["camera"].self_

    def test_star_item(self):
        parsed = parse_permissions_policy_header("fullscreen=*")
        assert parsed.directives["fullscreen"].star

    def test_paper_example_header(self):
        """The exact example of Section 2.2.3."""
        parsed = parse_permissions_policy_header(
            'camera=(), geolocation=(self "https://iframe.com")')
        assert parsed.directives["camera"].is_empty
        geo = parsed.directives["geolocation"]
        assert geo.self_
        assert geo.allows(IFRAME, self_origin=SELF)
        assert not parsed.diagnostics

    def test_feature_count(self):
        parsed = parse_permissions_policy_header("camera=(), usb=(), midi=()")
        assert parsed.feature_count == 3

    def test_origin_with_port(self):
        parsed = parse_permissions_policy_header('camera=("https://a.com:8443")')
        origin = parsed.directives["camera"].origins[0]
        assert origin.port == 8443

    def test_duplicate_directive_merges_and_flags(self):
        parsed = parse_permissions_policy_header("camera=(self), camera=(*)")
        assert parsed.has_issue(DirectiveIssue.DUPLICATE_FEATURE)
        merged = parsed.directives["camera"]
        assert merged.self_ and merged.star


class TestSyntaxErrors:
    """These drop the whole header (paper: 3,244 frames, 2%)."""

    def test_feature_policy_syntax_detected(self):
        with pytest.raises(HeaderParseError) as excinfo:
            parse_permissions_policy_header("camera 'self'; geolocation 'none'")
        assert "Feature-Policy" in str(excinfo.value)

    def test_trailing_comma(self):
        with pytest.raises(HeaderParseError):
            parse_permissions_policy_header("camera=(),")

    def test_unbalanced_parens(self):
        with pytest.raises(HeaderParseError):
            parse_permissions_policy_header("camera=(self")

    def test_error_retains_raw_value(self):
        with pytest.raises(HeaderParseError) as excinfo:
            parse_permissions_policy_header("camera=(),")
        assert excinfo.value.raw == "camera=(),"


class TestSemanticDiagnostics:
    """Misconfigurations the browser tolerates (paper: 6,408 websites)."""

    def test_none_token_flagged(self):
        parsed = parse_permissions_policy_header("camera=(none)")
        assert parsed.has_issue(DirectiveIssue.UNRECOGNIZED_TOKEN)
        assert parsed.directives["camera"].is_empty  # token has no effect

    def test_zero_token_flagged(self):
        parsed = parse_permissions_policy_header("camera=(0)")
        assert parsed.has_issue(DirectiveIssue.UNRECOGNIZED_TOKEN)

    def test_unquoted_url_flagged(self):
        parsed = parse_permissions_policy_header("camera=(https://a.com)")
        assert parsed.has_issue(DirectiveIssue.UNQUOTED_URL)
        assert not parsed.directives["camera"].origins  # not granted

    def test_contradictory_self_and_star(self):
        parsed = parse_permissions_policy_header("camera=(self *)")
        assert parsed.has_issue(DirectiveIssue.CONTRADICTORY)

    def test_url_without_self_flagged(self):
        """W3C issue #480: origins without self are not allowed."""
        parsed = parse_permissions_policy_header('camera=("https://iframe.com")')
        assert parsed.has_issue(DirectiveIssue.URL_WITHOUT_SELF)

    def test_url_with_self_not_flagged(self):
        parsed = parse_permissions_policy_header(
            'camera=(self "https://iframe.com")')
        assert not parsed.has_issue(DirectiveIssue.URL_WITHOUT_SELF)

    def test_unknown_feature_flagged_with_registry(self):
        parsed = parse_permissions_policy_header("warp-drive=()", KNOWN)
        assert parsed.has_issue(DirectiveIssue.UNKNOWN_FEATURE)
        # Directive still applied for forward compatibility.
        assert "warp-drive" in parsed.directives

    def test_invalid_origin_string_flagged(self):
        parsed = parse_permissions_policy_header('camera=("not a url")')
        assert parsed.has_issue(DirectiveIssue.INVALID_ORIGIN)


class TestSerialization:
    def test_roundtrip(self):
        raw = 'camera=(), geolocation=(self "https://iframe.com"), usb=(self)'
        parsed = parse_permissions_policy_header(raw)
        serialized = serialize_permissions_policy(parsed.directives)
        reparsed = parse_permissions_policy_header(serialized)
        assert set(reparsed.directives) == set(parsed.directives)
        for feature in parsed.directives:
            a, b = parsed.directives[feature], reparsed.directives[feature]
            assert (a.star, a.self_, a.origins) == (b.star, b.self_, b.origins)

    @given(st.lists(st.sampled_from(
        ["camera", "geolocation", "usb", "midi", "payment", "fullscreen"]),
        min_size=1, max_size=6, unique=True),
        st.sampled_from(["()", "(self)", "*", '(self "https://t.example")']))
    def test_generated_headers_always_reparse(self, features, value):
        raw = ", ".join(f"{f}={value}" for f in features)
        parsed = parse_permissions_policy_header(raw)
        assert set(parsed.directives) == set(features)
