"""Tests for per-browser policy enforcement (paper Section 2.2.6)."""

import pytest

from repro.policy.browser_profiles import (
    BrowserPolicyProfile,
    CrossBrowserDivergence,
    engine_for_browser,
    strip_unenforced,
)
from repro.policy.engine import PolicyFrame
from repro.registry.browsers import CHROMIUM, FIREFOX, SAFARI


class TestProfiles:
    def test_chromium_enforces_everything(self):
        profile = BrowserPolicyProfile.for_browser(CHROMIUM)
        assert profile.enforces_pp_header
        assert profile.enforces_fp_header
        assert profile.enforces_allow_attribute

    def test_firefox_ignores_headers(self):
        profile = BrowserPolicyProfile.for_browser(FIREFOX)
        assert not profile.enforces_pp_header
        assert not profile.enforces_fp_header
        assert profile.enforces_allow_attribute

    def test_strip_removes_header_recursively(self):
        top = PolicyFrame.top("https://a.com", header="camera=()")
        child = top.child("https://b.com/w", allow="camera")
        stripped = strip_unenforced(
            child, BrowserPolicyProfile.for_browser(FIREFOX))
        assert stripped.header is None
        assert stripped.parent.header is None
        assert stripped.allow is not None  # allow attr still enforced


class TestPerBrowserOutcomes:
    def test_header_disable_only_protects_chromium(self):
        """Permissions-Policy: camera=() — enforced by Chromium, ignored by
        Firefox and Safari (the paper's Section 2.2.6 gap)."""
        top = PolicyFrame.top("https://a.com", header="camera=()")
        assert not engine_for_browser(CHROMIUM).is_enabled("camera", top)
        assert engine_for_browser(FIREFOX).is_enabled("camera", top)
        assert engine_for_browser(SAFARI).is_enabled("camera", top)

    def test_allow_attribute_enforced_everywhere(self):
        top = PolicyFrame.top("https://a.com")
        child = top.child("https://b.com/w")
        for browser in (CHROMIUM, FIREFOX, SAFARI):
            assert not engine_for_browser(browser).is_enabled("camera", child)

    def test_feature_policy_fallback_chromium_only(self):
        top = PolicyFrame.top("https://a.com", fp_header="camera 'none'")
        assert not engine_for_browser(CHROMIUM).is_enabled("camera", top)
        assert engine_for_browser(FIREFOX).is_enabled("camera", top)


class TestDivergence:
    def test_divergence_found_for_header_site(self):
        top = PolicyFrame.top("https://a.com", header="camera=()")
        divergence = CrossBrowserDivergence()
        findings = {f.feature: f for f in divergence.divergences(
            top, features=["camera"])}
        assert "camera" in findings
        finding = findings["camera"]
        assert not finding.outcomes["Chromium"]
        assert finding.outcomes["Firefox"]
        assert finding.protects_only_chromium

    def test_enforcement_gaps(self):
        top = PolicyFrame.top("https://a.com",
                              header="camera=(), geolocation=()")
        gaps = CrossBrowserDivergence().enforcement_gaps(top)
        assert {gap.feature for gap in gaps} >= {"camera", "geolocation"}

    def test_no_header_no_powerful_divergence(self):
        top = PolicyFrame.top("https://a.com")
        findings = CrossBrowserDivergence().divergences(
            top, features=["camera"])
        assert findings == []  # camera supported + allowed everywhere

    def test_unsupported_feature_diverges_by_support_not_policy(self):
        """browsing-topics diverges because only Chromium ships it."""
        top = PolicyFrame.top("https://a.com")
        findings = {f.feature: f for f in CrossBrowserDivergence().divergences(
            top, features=["browsing-topics"])}
        finding = findings["browsing-topics"]
        assert finding.outcomes["Chromium"]
        assert not finding.outcomes["Firefox"]
        assert not finding.protects_only_chromium
