"""Tests for the landing-page bias measurement (paper Section 6.1)."""

import pytest

from repro.analysis.landing_bias import (
    LandingBiasReport,
    measure_landing_bias,
)
from repro.crawler.errors import UnreachableError
from repro.crawler.fetcher import SyntheticFetcher
from repro.synthweb.generator import FailureMode, SyntheticWeb


@pytest.fixture(scope="module")
def web():
    return SyntheticWeb(800, seed=2024)


class TestSubpages:
    def test_subpage_urls_resolve(self, web):
        rank = next(r for r in range(800)
                    if web.site(r).failure is FailureMode.NONE)
        fetcher = SyntheticFetcher(web)
        response = fetcher.fetch(f"{web.site(rank).url}/p0")
        assert response.content.scripts
        assert not response.content.iframes  # widgets are landing-page only

    def test_out_of_range_subpage_404s(self, web):
        rank = next(r for r in range(800)
                    if web.site(r).failure is FailureMode.NONE)
        fetcher = SyntheticFetcher(web)
        with pytest.raises(UnreachableError):
            fetcher.fetch(f"{web.site(rank).url}/p99")

    def test_subpage_promotes_navigation_gated_ops(self, web):
        """Being on the page IS the navigation: nav-gated operations run
        immediately on subpages."""
        found = False
        for rank in range(800):
            spec = web.site(rank)
            if spec.failure is not FailureMode.NONE:
                continue
            landing_gates = {op.interaction_gate
                             for script in spec.scripts
                             for op in script.operations
                             if op.requires_interaction}
            if "navigation" not in landing_gates:
                continue
            content = web.subpage_content(rank, 0)
            promoted = [op for script in content.scripts
                        for op in script.operations
                        if not op.requires_interaction
                        and op.interaction_gate == "navigation"]
            assert promoted
            still_gated = [op for script in content.scripts
                           for op in script.operations
                           if op.requires_interaction]
            assert all(op.interaction_gate != "navigation"
                       for op in still_gated)
            found = True
            break
        assert found, "no navigation-gated site in sample"

    def test_failed_site_subpage_raises_same_taxonomy(self, web):
        failing = next(r for r in range(800)
                       if web.site(r).failure is FailureMode.UNREACHABLE)
        with pytest.raises(Exception) as excinfo:
            SyntheticFetcher(web).fetch(f"{web.site(failing).url}/p0")
        assert getattr(excinfo.value, "taxonomy", None) == "unreachable"


class TestLandingBias:
    @pytest.fixture(scope="class")
    def report(self, web):
        return measure_landing_bias(web, sample=150)

    def test_deep_pages_reveal_extra_permissions(self, report):
        assert report.sites_measured == 150
        assert report.sites_with_extra_permissions > 0
        assert report.extra_permissions

    def test_coverage_ratio_below_one(self, report):
        """The landing page under-reports — the paper's conservative
        under-reporting claim, quantified."""
        assert 0.5 < report.coverage_ratio < 1.0

    def test_totals_consistent(self, report):
        assert report.full_permission_total >= report.landing_permission_total

    def test_empty_report_defaults(self):
        report = LandingBiasReport()
        assert report.extra_share == 0.0
        assert report.coverage_ratio == 1.0
