#!/usr/bin/env python
"""Standalone perf report: times webgen/crawl/analysis across backends and
the cold/warm measurement cache, then writes ``BENCH_crawl.json``.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/perf_report.py [--sites N] [--workers N]
        [--backends serial,thread,process] [--output BENCH_crawl.json]

The same collection code backs ``benchmarks/bench_perf_crawl.py``; this
entry point exists so a perf snapshot never requires pytest.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.perf import DEFAULT_BACKENDS, collect, write_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sites", type=int,
                        default=int(os.environ.get("REPRO_SITES", "2000")))
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--backends",
                        default=",".join(DEFAULT_BACKENDS),
                        help="comma-separated subset of "
                             "serial/thread/process")
    parser.add_argument("--output", default="BENCH_crawl.json")
    args = parser.parse_args(argv)

    backends = tuple(b.strip() for b in args.backends.split(",") if b.strip())
    report = collect(args.sites, seed=args.seed, workers=args.workers,
                     backends=backends)
    path = write_report(report, args.output)

    crawl = report["crawl"]
    print(f"wrote {path} ({args.sites} sites, "
          f"{report['cpu_count']} cpus)")
    for backend in backends:
        timing = crawl[backend]
        print(f"  {backend:8s} {timing['seconds']:8.2f}s "
              f"{timing['sites_per_second']:8.1f} sites/s")
    cache = report["cache"]
    print(f"  cache    cold {cache['cold_seconds']:.2f}s, "
          f"warm {cache['warm_seconds']:.2f}s "
          f"({cache['warm_over_cold']:.1%} of cold)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
