#!/usr/bin/env python
"""CI fuzz-smoke drill: the hostile-input pipeline, end to end.

Three stages (DESIGN.md §4g), any failure exits non-zero:

1. **Parser sweep** — every value of the seeded hostile corpus through
   all three policy parsers in lenient mode; none may raise, for every
   seed, at megabyte payload sizes.
2. **Pipeline differential** — a hostile crawl (megabyte headers,
   100-deep iframe chains, oversized scripts) through
   generate → crawl → store → verify → index → summarize for each seed;
   serial, thread and process backends must produce byte-identical
   datasets and the clean store must verify with zero corrupt rows.
3. **Bit-flip drill** — rows of a stored hostile crawl are corrupted in
   place; ``CrawlStore.verify`` must detect 100 % of them,
   ``load_dataset`` must survive with counted warnings, and
   ``verify(repair=True)`` must quarantine every one.  The final
   :class:`VerifyReport` is written as the ``--report`` JSON artifact CI
   uploads.

Usage::

    PYTHONPATH=src python scripts/fuzz_smoke.py --report report.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.analysis.index import DatasetIndex  # noqa: E402
from repro.analysis.summary import summarize  # noqa: E402
from repro.crawler.crawler import CrawlConfig  # noqa: E402
from repro.crawler.guards import ResourceGuards  # noqa: E402
from repro.crawler.integrity import canonical_visit_bytes  # noqa: E402
from repro.crawler.pool import CrawlerPool  # noqa: E402
from repro.crawler.storage import CrawlStore  # noqa: E402
from repro.policy.allow_attr import parse_allow_attribute  # noqa: E402
from repro.policy.feature_policy import (  # noqa: E402
    parse_feature_policy_header,
)
from repro.policy.header import parse_permissions_policy_header  # noqa: E402
from repro.synthweb.generator import SyntheticWeb  # noqa: E402
from repro.synthweb.hostile import (  # noqa: E402
    HostileConfig,
    HostileFetcherSpec,
    hostile_values,
)

GUARDS = ResourceGuards(
    max_header_bytes=1 << 16, max_script_bytes=1 << 16,
    max_allow_attr_length=4096, max_frames_per_visit=64,
    watchdog_deadline_seconds=90.0, breaker_failure_threshold=3)


def parser_sweep(seeds: list[int], payload_bytes: int) -> int:
    checked = 0
    for seed in seeds:
        for value in hostile_values(seed, 64, payload_bytes=payload_bytes):
            parse_permissions_policy_header(value, mode="lenient")
            parse_feature_policy_header(value, mode="lenient")
            parse_allow_attribute(value, mode="lenient")
            checked += 1
    return checked


def pipeline_differential(seed: int, sites: int, payload_bytes: int,
                          workdir: Path) -> Path:
    web = SyntheticWeb(sites, seed=seed)
    spec = HostileFetcherSpec(HostileConfig(seed=seed,
                                            payload_bytes=payload_bytes))
    config = CrawlConfig(guards=GUARDS)
    encodings = {}
    dataset = None
    for backend in ("serial", "thread", "process"):
        pool = CrawlerPool(web, workers=2, backend=backend, config=config,
                           fetcher_spec=spec)
        dataset = pool.run(range(sites))
        encodings[backend] = [canonical_visit_bytes(visit)
                              for visit in dataset.visits]
    if not (encodings["serial"] == encodings["thread"]
            == encodings["process"]):
        raise AssertionError(f"seed {seed}: backends diverged on hostile "
                             f"input")
    path = workdir / f"hostile-{seed}.sqlite"
    with CrawlStore(path) as store:
        store.save_dataset(dataset)
        report = store.verify()
        if not report.ok or report.verified_rows != sites:
            raise AssertionError(f"seed {seed}: clean store failed verify: "
                                 f"{report.render()}")
        loaded = store.load_dataset()
    DatasetIndex(loaded.visits)
    summarize(loaded)
    return path


def bit_flip_drill(path: Path) -> "tuple[dict, int]":
    with CrawlStore(path) as store:
        total = len(store.stored_ranks())
        flipped = set()
        for rank, statement in (
                (0, "UPDATE visits SET duration_seconds = "
                    "duration_seconds + 1 WHERE rank = ?"),
                (2, "UPDATE frames SET headers = '{broken' WHERE rank = ?"),
                (4, "UPDATE visits SET checksum = checksum + 7 "
                    "WHERE rank = ?")):
            store._conn.execute(statement, (rank,))
            flipped.add(rank)
        store._conn.commit()
        report = store.verify()
        detected = {bad.rank for bad in report.corrupt}
        if detected != flipped:
            raise AssertionError(f"verify detected {sorted(detected)}, "
                                 f"expected {sorted(flipped)}")
        loaded = store.load_dataset()  # must not raise
        if not store.last_corrupt_counts and len(loaded.visits) == total:
            raise AssertionError("tolerant load neither skipped nor "
                                 "counted the corrupt rows")
        repaired = store.verify(repair=True)
        if repaired.quarantined != len(flipped):
            raise AssertionError(f"repair quarantined "
                                 f"{repaired.quarantined} rows, expected "
                                 f"{len(flipped)}")
        clean = store.verify()
        if not clean.ok or clean.previously_quarantined != len(flipped):
            raise AssertionError(f"post-repair store not clean: "
                                 f"{clean.render()}")
        return clean.to_json(), len(flipped)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="hostile-corpus fuzz-smoke drill (DESIGN.md §4g)")
    parser.add_argument("--seeds", type=int, nargs="+", default=[2, 3, 4])
    parser.add_argument("--sites", type=int, default=12)
    parser.add_argument("--payload-bytes", type=int, default=1 << 20,
                        help="size of the oversized hostile payloads "
                             "(default: 1 MiB)")
    parser.add_argument("--report", default="quarantine-report.json",
                        help="where to write the final verify report "
                             "(the CI artifact)")
    args = parser.parse_args(argv)

    checked = parser_sweep(args.seeds, args.payload_bytes)
    print(f"parser sweep: {checked} hostile values x 3 parsers, "
          f"0 exceptions")

    with tempfile.TemporaryDirectory(prefix="fuzz-smoke-") as tmp:
        workdir = Path(tmp)
        store_path = None
        for seed in args.seeds:
            store_path = pipeline_differential(
                seed, args.sites, args.payload_bytes, workdir)
            print(f"pipeline differential: seed {seed}, {args.sites} "
                  f"sites — serial/thread/process byte-identical, store "
                  f"verifies clean")
        report, flipped = bit_flip_drill(store_path)
        print(f"bit-flip drill: {flipped}/{flipped} corrupt rows "
              f"detected and quarantined; load_dataset survived")

    Path(args.report).write_text(json.dumps(report, indent=2) + "\n",
                                 encoding="utf-8")
    print(f"wrote quarantine report to {args.report}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
